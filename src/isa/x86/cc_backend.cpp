#include "isa/x86/cc_backend.h"

#include "isa/x86/build.h"

namespace plx::cc {

namespace {

using namespace x86::ins;
using x86::Cond;
using x86::Insn;
using x86::Mem;
using x86::Mnemonic;
using x86::OpSize;
using x86::Reg;

// Slot i lives at [ebp - 4(i+1)].
Mem slot_mem(int slot) { return Mem{.base = Reg::EBP, .disp = -4 * (slot + 1)}; }

struct Emitter {
  img::Fragment frag;
  std::string pending_label;

  void put(Insn insn) {
    img::Item item = img::Item::make_insn(insn);
    attach_label(item);
    frag.items.push_back(std::move(item));
  }
  void put_fixup(Insn insn, img::Fixup fixup, const std::string& sym,
                 std::int32_t addend = 0) {
    img::Item item = img::Item::make_insn(insn);
    item.fixup = fixup;
    item.sym = sym;
    item.addend = addend;
    attach_label(item);
    frag.items.push_back(std::move(item));
  }
  void attach_label(img::Item& item) {
    if (!pending_label.empty()) {
      item.labels.push_back(pending_label);
      pending_label.clear();
    }
  }
  void bind_label(const std::string& name) {
    if (!pending_label.empty()) {
      // Two labels on the same spot: emit a nop to carry the first.
      put(nop());
    }
    pending_label = name;
  }

  // slot -> eax / eax -> slot.
  void load_slot(Reg r, int slot) { put(load(r, slot_mem(slot))); }
  void store_slot(int slot, Reg r) { put(store(slot_mem(slot), r)); }
};

std::string label_name(int l) { return ".L" + std::to_string(l); }

Cond cond_for(IrOp op) {
  switch (op) {
    case IrOp::CmpEq: return Cond::E;
    case IrOp::CmpNe: return Cond::NE;
    case IrOp::CmpLt: return Cond::L;
    case IrOp::CmpLe: return Cond::LE;
    case IrOp::CmpGt: return Cond::G;
    case IrOp::CmpGe: return Cond::GE;
    default: return Cond::E;
  }
}

}  // namespace

Result<img::Fragment> emit_func_x86(const IrFunc& f) {
  Emitter e;
  e.frag.name = f.name;
  e.frag.section = img::SectionKind::Text;
  e.frag.is_func = true;
  e.frag.align = 16;

  // Prologue: classic frame, then copy parameters into their slots so every
  // slot access is uniform.
  e.put(push(Reg::EBP));
  e.put(mov(Reg::EBP, Reg::ESP));
  Insn alloc = sub(Reg::ESP, 4 * std::max(f.num_slots, 1));
  alloc.wide_imm = true;  // gcc-style sub esp, imm32
  e.put(alloc);
  for (int p = 0; p < f.num_params; ++p) {
    e.put(load(Reg::EAX, Mem{.base = Reg::EBP, .disp = 8 + 4 * p}));
    e.store_slot(p, Reg::EAX);
  }

  for (const auto& insn : f.insns) {
    switch (insn.op) {
      case IrOp::Const:
        e.put(mov(Reg::EAX, insn.imm));
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::Copy:
        e.load_slot(Reg::EAX, insn.a);
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::Add:
      case IrOp::Sub:
      case IrOp::And:
      case IrOp::Or:
      case IrOp::Xor: {
        e.load_slot(Reg::EAX, insn.a);
        Mnemonic m = Mnemonic::ADD;
        if (insn.op == IrOp::Sub) m = Mnemonic::SUB;
        if (insn.op == IrOp::And) m = Mnemonic::AND;
        if (insn.op == IrOp::Or) m = Mnemonic::OR;
        if (insn.op == IrOp::Xor) m = Mnemonic::XOR;
        if (insn.b < 0) {
          e.put(make2(m, r(Reg::EAX), imm(insn.imm)));
        } else {
          e.put(make2(m, r(Reg::EAX), mem(slot_mem(insn.b))));
        }
        e.store_slot(insn.dst, Reg::EAX);
        break;
      }

      case IrOp::Mul:
        if (insn.b < 0) {
          // imul eax, [slot a], imm
          x86::Insn tri;
          tri.op = Mnemonic::IMUL;
          tri.ops[0] = r(Reg::EAX);
          tri.ops[1] = mem(slot_mem(insn.a));
          tri.ops[2] = imm(insn.imm);
          tri.nops = 3;
          e.put(tri);
        } else {
          e.load_slot(Reg::EAX, insn.a);
          e.put(make2(Mnemonic::IMUL, r(Reg::EAX), mem(slot_mem(insn.b))));
        }
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::Div:
      case IrOp::Mod:
        e.load_slot(Reg::EAX, insn.a);
        e.put(cdq());
        e.put(make1(Mnemonic::IDIV, mem(slot_mem(insn.b))));
        e.store_slot(insn.dst, insn.op == IrOp::Div ? Reg::EAX : Reg::EDX);
        break;

      case IrOp::Shl:
      case IrOp::Sar:
        e.load_slot(Reg::EAX, insn.a);
        if (insn.b < 0) {
          e.put(insn.op == IrOp::Shl ? shl(Reg::EAX, insn.imm)
                                     : sar(Reg::EAX, insn.imm));
        } else {
          e.load_slot(Reg::ECX, insn.b);
          e.put(insn.op == IrOp::Shl ? shl_cl(Reg::EAX) : sar_cl(Reg::EAX));
        }
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::Neg:
        e.load_slot(Reg::EAX, insn.a);
        e.put(neg(Reg::EAX));
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::Not:
        e.load_slot(Reg::EAX, insn.a);
        e.put(not_(Reg::EAX));
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::CmpEq:
      case IrOp::CmpNe:
      case IrOp::CmpLt:
      case IrOp::CmpLe:
      case IrOp::CmpGt:
      case IrOp::CmpGe:
        e.load_slot(Reg::EAX, insn.a);
        if (insn.b < 0) {
          e.put(make2(Mnemonic::CMP, r(Reg::EAX), imm(insn.imm)));
        } else {
          e.put(make2(Mnemonic::CMP, r(Reg::EAX), mem(slot_mem(insn.b))));
        }
        e.put(setcc(cond_for(insn.op), Reg::EAX));
        e.put(movzx8(Reg::EAX, Reg::EAX));
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::Load:
        e.load_slot(Reg::EAX, insn.a);
        e.put(load(Reg::EAX, Mem{.base = Reg::EAX}));
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::LoadB:
        e.load_slot(Reg::EAX, insn.a);
        e.put(make2(Mnemonic::MOVZX, r(Reg::EAX),
                    x86::Operand::make_mem(Mem{.base = Reg::EAX}, OpSize::Byte)));
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::Store:
        e.load_slot(Reg::EAX, insn.a);
        e.load_slot(Reg::EDX, insn.b);
        e.put(store(Mem{.base = Reg::EAX}, Reg::EDX));
        break;

      case IrOp::StoreB:
        e.load_slot(Reg::EAX, insn.a);
        e.load_slot(Reg::EDX, insn.b);
        e.put(store(Mem{.base = Reg::EAX}, Reg::EDX, OpSize::Byte));
        break;

      case IrOp::AddrSlot:
        e.put(lea(Reg::EAX, slot_mem(insn.imm)));
        e.store_slot(insn.dst, Reg::EAX);
        break;

      case IrOp::AddrGlobal: {
        Insn mov_abs = mov(Reg::EAX, 0);
        e.put_fixup(mov_abs, img::Fixup::AbsImm, insn.sym, insn.imm);
        e.store_slot(insn.dst, Reg::EAX);
        break;
      }

      case IrOp::Call: {
        // cdecl: push args right-to-left.
        for (auto it = insn.args.rbegin(); it != insn.args.rend(); ++it) {
          e.put(make1(Mnemonic::PUSH, mem(slot_mem(*it))));
        }
        e.put_fixup(call_rel(0), img::Fixup::RelBranch, insn.sym);
        if (!insn.args.empty()) {
          e.put(add(Reg::ESP, 4 * static_cast<int>(insn.args.size())));
        }
        e.store_slot(insn.dst, Reg::EAX);
        break;
      }

      case IrOp::Syscall: {
        static constexpr Reg kArgRegs[] = {Reg::EBX, Reg::ECX, Reg::EDX};
        for (std::size_t k = 1; k < insn.args.size(); ++k) {
          e.load_slot(kArgRegs[k - 1], insn.args[k]);
        }
        e.load_slot(Reg::EAX, insn.args[0]);
        e.put(int_(0x80));
        e.store_slot(insn.dst, Reg::EAX);
        break;
      }

      case IrOp::Label:
        e.bind_label(label_name(insn.imm));
        break;

      case IrOp::Jmp:
        e.put_fixup(jmp_rel(0), img::Fixup::RelBranch, label_name(insn.imm));
        break;

      case IrOp::Jz:
        e.load_slot(Reg::EAX, insn.a);
        e.put(test(Reg::EAX, Reg::EAX));
        e.put_fixup(jcc_rel(Cond::E, 0), img::Fixup::RelBranch, label_name(insn.imm));
        break;

      case IrOp::Ret:
        if (insn.a >= 0) {
          e.load_slot(Reg::EAX, insn.a);
        } else {
          e.put(mov(Reg::EAX, 0));
        }
        e.put(leave());
        e.put(ret());
        break;
    }
  }

  if (!e.pending_label.empty()) {
    e.put(nop());  // bind a trailing label
  }
  return std::move(e.frag);
}

img::Fragment emit_global(const GlobalVar& g) {
  img::Fragment frag;
  frag.name = g.name;
  frag.section = img::SectionKind::Data;
  frag.align = 4;
  Buffer bytes;
  if (g.has_str_init) {
    for (char c : g.str_init) bytes.put_u8(static_cast<std::uint8_t>(c));
    bytes.put_u8(0);
    while (bytes.size() < static_cast<std::size_t>(g.array_size)) bytes.put_u8(0);
  } else if (g.array_size >= 0) {
    const bool is_char = g.type.base == Type::Base::Char && !g.type.is_pointer();
    const std::size_t elem = is_char ? 1 : 4;
    for (std::int32_t v : g.init) {
      if (is_char) {
        bytes.put_u8(static_cast<std::uint8_t>(v));
      } else {
        bytes.put_u32(static_cast<std::uint32_t>(v));
      }
    }
    const std::size_t total = elem * static_cast<std::size_t>(g.array_size);
    while (bytes.size() < total) bytes.put_u8(0);
  } else {
    bytes.put_u32(g.init.empty() ? 0 : static_cast<std::uint32_t>(g.init[0]));
  }
  frag.items.push_back(img::Item::make_data(std::move(bytes)));
  return frag;
}

img::Fragment emit_string(const std::string& name, const std::string& text) {
  img::Fragment frag;
  frag.name = name;
  frag.section = img::SectionKind::Rodata;
  frag.align = 1;
  Buffer bytes;
  for (char c : text) bytes.put_u8(static_cast<std::uint8_t>(c));
  bytes.put_u8(0);
  frag.items.push_back(img::Item::make_data(std::move(bytes)));
  return frag;
}

}  // namespace plx::cc

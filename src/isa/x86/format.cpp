#include "isa/x86/format.h"

#include <cstdio>

#include "support/hexdump.h"
#include "isa/x86/decoder.h"

namespace plx::x86 {

namespace {

std::string format_imm(std::int32_t v) {
  char buf[16];
  if (v >= 0 && v < 10) {
    std::snprintf(buf, sizeof buf, "%d", v);
  } else if (v < 0 && v > -10) {
    std::snprintf(buf, sizeof buf, "%d", v);
  } else {
    std::snprintf(buf, sizeof buf, "0x%x", static_cast<std::uint32_t>(v));
  }
  return buf;
}

std::string format_mem(const Mem& m, OpSize size) {
  std::string out;
  switch (size) {
    case OpSize::Byte: out = "byte ["; break;
    case OpSize::Word: out = "word ["; break;
    case OpSize::Dword: out = "dword ["; break;
  }
  bool first = true;
  if (m.base != Reg::NONE) {
    out += reg_name(m.base);
    first = false;
  }
  if (m.index != Reg::NONE) {
    if (!first) out += '+';
    out += reg_name(m.index);
    if (m.scale != 1) {
      out += '*';
      out += static_cast<char>('0' + m.scale);
    }
    first = false;
  }
  if (m.disp != 0 || first) {
    char buf[16];
    if (!first && m.disp < 0) {
      std::snprintf(buf, sizeof buf, "-0x%x", static_cast<std::uint32_t>(-m.disp));
    } else {
      if (!first) out += '+';
      std::snprintf(buf, sizeof buf, "0x%x", static_cast<std::uint32_t>(m.disp));
    }
    out += buf;
  }
  out += ']';
  return out;
}

std::string format_operand(const Operand& o, const Insn& insn, std::uint32_t addr) {
  switch (o.kind) {
    case Operand::Kind::None:
      return {};
    case Operand::Kind::Reg:
      return reg_name(o.reg, o.size);
    case Operand::Kind::Imm:
      return format_imm(o.imm);
    case Operand::Kind::Mem:
      return format_mem(o.mem, o.size);
    case Operand::Kind::Rel: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "0x%x", insn.rel_target(addr));
      return buf;
    }
  }
  return {};
}

}  // namespace

std::string format(const Insn& insn, std::uint32_t addr) {
  std::string out = mnemonic_name(insn.op);
  if (insn.op == Mnemonic::JCC || insn.op == Mnemonic::SETCC) {
    out += cond_name(insn.cond);
  }
  for (std::uint8_t i = 0; i < insn.nops; ++i) {
    out += (i == 0) ? " " : ", ";
    out += format_operand(insn.ops[i], insn, addr);
  }
  return out;
}

std::string disassemble(std::span<const std::uint8_t> bytes, std::uint32_t base) {
  std::string out;
  char buf[64];
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto insn = decode(bytes.subspan(off));
    const std::size_t len = insn ? insn->len : 1;
    std::snprintf(buf, sizeof buf, "%8x:  ", base + static_cast<std::uint32_t>(off));
    out += buf;
    std::string hex = hexbytes(bytes.subspan(off, len));
    hex.resize(22, ' ');
    out += hex;
    out += insn ? format(*insn, base + static_cast<std::uint32_t>(off)) : "(bad)";
    out += '\n';
    off += len;
  }
  return out;
}

}  // namespace plx::x86

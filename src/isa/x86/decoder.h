// x86-32 instruction decoder.
//
// Decodes a single instruction from a byte span. Returns std::nullopt on any
// byte sequence outside the supported subset — gadget scanning decodes at
// every byte offset, so failure must be cheap and silent, never fatal.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "isa/x86/insn.h"

namespace plx::x86 {

// Decode one instruction starting at bytes[0]. On success the returned
// Insn::len tells how many bytes were consumed.
std::optional<Insn> decode(std::span<const std::uint8_t> bytes);

}  // namespace plx::x86

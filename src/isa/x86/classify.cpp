#include "isa/x86/classify.h"

#include "isa/x86/insn.h"

namespace plx::x86 {

using gadget::Gadget;
using gadget::GType;

namespace {

constexpr std::uint16_t bit(Reg r) { return static_cast<std::uint16_t>(1u << static_cast<unsigned>(r)); }
constexpr std::uint16_t kEspBit = 1u << 4;

// Byte-granular constant tracking for one register.
struct KnownVal {
  std::uint32_t value = 0;
  std::uint8_t mask = 0;  // bit b set => byte b of `value` is known

  bool known_bytes(int lo, int n) const {
    for (int b = lo; b < lo + n; ++b) {
      if (!(mask & (1u << b))) return false;
    }
    return true;
  }
  std::uint32_t bytes(int lo, int n) const {
    std::uint32_t v = 0;
    for (int b = 0; b < n; ++b) v |= ((value >> ((lo + b) * 8)) & 0xff) << (b * 8);
    return v;
  }
  void set_bytes(int lo, int n, std::uint32_t v, bool known) {
    for (int b = 0; b < n; ++b) {
      const int byte = lo + b;
      if (known) {
        value = (value & ~(0xffu << (byte * 8))) | (((v >> (b * 8)) & 0xff) << (byte * 8));
        mask |= static_cast<std::uint8_t>(1u << byte);
      } else {
        mask &= static_cast<std::uint8_t>(~(1u << byte));
      }
    }
  }
};

struct Sim {
  KnownVal regs[8];

  // Returns (byte offset, byte count, parent register) of a register operand.
  static void locate(Reg r, OpSize size, int& lo, int& n, Reg& parent) {
    const auto i = static_cast<unsigned>(r);
    switch (size) {
      case OpSize::Byte:
        if (i < 4) {
          parent = r;
          lo = 0;
        } else {
          parent = static_cast<Reg>(i - 4);
          lo = 1;
        }
        n = 1;
        break;
      case OpSize::Word:
        parent = r;
        lo = 0;
        n = 2;
        break;
      case OpSize::Dword:
        parent = r;
        lo = 0;
        n = 4;
        break;
    }
  }

  bool reg_known(Reg r, OpSize size, std::uint32_t& out) const {
    int lo, n;
    Reg parent = r;
    locate(r, size, lo, n, parent);
    const KnownVal& kv = regs[static_cast<unsigned>(parent)];
    if (!kv.known_bytes(lo, n)) return false;
    out = kv.bytes(lo, n);
    return true;
  }

  void set_reg(Reg r, OpSize size, std::uint32_t v, bool known) {
    int lo, n;
    Reg parent = r;
    locate(r, size, lo, n, parent);
    regs[static_cast<unsigned>(parent)].set_bytes(lo, n, v, known);
  }

  // Value of an operand if statically known.
  bool operand_known(const Operand& o, std::uint32_t& out) const {
    if (o.kind == Operand::Kind::Imm) {
      out = static_cast<std::uint32_t>(o.imm);
      return true;
    }
    if (o.kind == Operand::Kind::Reg) return reg_known(o.reg, o.size, out);
    return false;
  }
};

Reg parent_of(const Operand& o) {
  int lo, n;
  Reg parent = o.reg;
  Sim::locate(o.reg, o.size, lo, n, parent);
  return parent;
}

bool is_reg32(const Operand& o) {
  return o.kind == Operand::Kind::Reg && o.size == OpSize::Dword;
}

bool is_low8(const Operand& o) {
  return o.kind == Operand::Kind::Reg && o.size == OpSize::Byte &&
         static_cast<unsigned>(o.reg) < 4;
}

// Simple base-only memory operand usable with scratch parking.
bool parkable_mem(const x86::Mem& m) {
  return m.base != Reg::NONE && m.base != Reg::ESP && m.index == Reg::NONE &&
         m.disp >= -0x700 && m.disp <= 0x700;
}

}  // namespace

void classify(std::span<const Insn> insns, Gadget& out) {
  out.type = GType::Unusable;
  out.r1 = out.r2 = isa::kNoReg;
  out.cond = isa::kNoCond;
  out.clobbers = 0;
  out.total_pops = 0;
  out.value_pop_index = 0;
  out.scratch_addr_regs = 0;
  out.far_ret = false;
  out.ret_imm = 0;
  out.disp = 0;
  if (insns.empty()) return;

  const Insn& term = insns.back();
  if (term.op == Mnemonic::RETF) {
    out.far_ret = true;
  } else if (term.op != Mnemonic::RET) {
    return;  // not a gadget at all
  }
  if (term.nops == 1) {
    const std::uint32_t imm = static_cast<std::uint32_t>(term.ops[0].imm) & 0xffff;
    if (imm % 4 != 0 || imm > 64) return;  // unusable stack adjustment
    out.ret_imm = static_cast<std::uint16_t>(imm);
  }

  Sim sim;
  GType type = GType::Transparent;  // promoted when a primary effect matches
  Reg r1 = Reg::NONE, r2 = Reg::NONE;
  std::uint16_t output_bit = 0;  // reg holding the primary result
  bool primary_is_pop = false;
  int primary_index = -1;  // body index of the primary effect (flag windows)

  // Demotes the gadget back to Transparent; a destroyed PopReg primary's
  // value word becomes a plain filler pop again.
  auto demote = [&] {
    if (primary_is_pop) {
      ++out.total_pops;
      primary_is_pop = false;
    }
    primary_index = -1;
    type = GType::Transparent;
    r1 = r2 = Reg::NONE;
    output_bit = 0;
  };

  auto body = insns.subspan(0, insns.size() - 1);
  for (std::size_t body_idx = 0; body_idx < body.size(); ++body_idx) {
    const Insn& insn = body[body_idx];
    const Operand& d = insn.ops[0];
    const Operand& s = insn.ops[1];

    // --- hard rejections ----------------------------------------------------
    switch (insn.op) {
      case Mnemonic::JMP:
      case Mnemonic::JCC:
      case Mnemonic::CALL:
      case Mnemonic::RET:
      case Mnemonic::RETF:
      case Mnemonic::INT:
      case Mnemonic::INT3:
      case Mnemonic::HLT:
      case Mnemonic::LEAVE:
      case Mnemonic::PUSH:
      case Mnemonic::PUSHAD:
      case Mnemonic::PUSHFD:
      case Mnemonic::DIV:   // may fault on chain-uncontrolled values
      case Mnemonic::IDIV:
      case Mnemonic::INVALID:
        return;
      default:
        break;
    }

    // --- ESP discipline -------------------------------------------------
    const auto fx = x86::reg_effects(insn);
    if (fx.writes & kEspBit) {
      if (insn.op == Mnemonic::POP && d.kind == Operand::Kind::Reg &&
          d.reg == Reg::ESP && d.size == OpSize::Dword) {
        // pop esp: usable only as the sole effect (chain epilogue).
        if (type != GType::Transparent || out.total_pops != 0 || &insn != &body.back()) return;
        out.type = GType::PopEsp;
        return;  // nothing after it matters; term already checked
      }
      if (insn.op == Mnemonic::ADD && is_reg32(d) && d.reg == Reg::ESP && is_reg32(s)) {
        if (type != GType::Transparent) return;
        type = GType::AddEspReg;
        r1 = s.reg;
        primary_index = static_cast<int>(body_idx);
        // After this, esp points into chain-controlled memory; any further
        // instruction is fine only if it doesn't touch esp — keep scanning.
        continue;
      }
      if (insn.op == Mnemonic::POP) {
        // pop into something else (reg/mem) — handled below.
      } else if (insn.op == Mnemonic::ADD && is_reg32(d) && d.reg == Reg::ESP &&
                 s.kind == Operand::Kind::Imm && s.imm >= 0 && s.imm % 4 == 0 &&
                 s.imm <= 32) {
        out.total_pops = static_cast<std::uint8_t>(out.total_pops + s.imm / 4);
        continue;
      } else {
        return;  // any other esp write derails the chain
      }
    }

    // --- pops -----------------------------------------------------------
    if (insn.op == Mnemonic::POP) {
      if (d.kind != Operand::Kind::Reg || d.size != OpSize::Dword) return;  // pop [mem]
      const Reg r = d.reg;
      if (type == GType::Transparent && output_bit == 0) {
        // Candidate primary effect: PopReg. Only promote if the register
        // survives to the end (checked by later writes clearing it).
        type = GType::PopReg;
        r1 = r;
        out.value_pop_index = out.total_pops;
        output_bit = bit(r);
        primary_is_pop = true;
        primary_index = static_cast<int>(body_idx);
      } else {
        out.clobbers |= bit(r);
        ++out.total_pops;
        if (output_bit & bit(r)) demote();  // primary output destroyed
        sim.set_reg(r, OpSize::Dword, 0, false);
        continue;
      }
      // The value-carrying pop itself is not a filler; total_pops counts
      // filler words only, value_pop_index remembers where the value goes.
      sim.set_reg(r, OpSize::Dword, 0, false);
      continue;
    }

    if (insn.op == Mnemonic::POPAD) {
      // Consumes 8 words and clobbers everything; transparent filler.
      out.total_pops = static_cast<std::uint8_t>(out.total_pops + 8);
      out.clobbers |= 0xff & ~kEspBit;
      for (int r = 0; r < 8; ++r) {
        if (r != 4) sim.set_reg(static_cast<Reg>(r), OpSize::Dword, 0, false);
      }
      if (output_bit) demote();
      continue;
    }
    if (insn.op == Mnemonic::POPFD) {
      out.total_pops = static_cast<std::uint8_t>(out.total_pops + 1);
      continue;
    }

    // --- memory accesses --------------------------------------------------
    if (fx.writes_mem) {
      if (d.kind != Operand::Kind::Mem) return;  // unexpected shape
      if (!parkable_mem(d.mem)) return;
      const bool is_primary_store =
          type == GType::Transparent && insn.opsize == OpSize::Dword && is_reg32(s) &&
          (insn.op == Mnemonic::MOV || insn.op == Mnemonic::ADD);
      if (is_primary_store) {
        type = (insn.op == Mnemonic::MOV) ? GType::StoreMem : GType::AddStoreMem;
        r1 = d.mem.base;
        r2 = s.reg;
        out.disp = d.mem.disp;
        primary_index = static_cast<int>(body_idx);
        output_bit = 0;  // output is memory; register writes after are fine
      } else {
        // Any other write to a parkable address is harmless once the chain
        // parks the base register on the sacrificial scratch area — the
        // paper's Listing 1 gadgets (`add [eax], al`, `sar byte [ecx+7]`)
        // are exactly this shape.
        out.scratch_addr_regs |= bit(d.mem.base);
      }
      continue;
    }
    if (fx.reads_mem) {
      const Operand& mo = (d.kind == Operand::Kind::Mem) ? d : s;
      if (mo.kind != Operand::Kind::Mem || !parkable_mem(mo.mem)) return;
      const bool is_primary_load = type == GType::Transparent &&
                                   insn.op == Mnemonic::MOV && is_reg32(d) &&
                                   mo.kind == Operand::Kind::Mem &&
                                   insn.opsize == OpSize::Dword && &mo == &s;
      if (is_primary_load) {
        type = GType::LoadMem;
        r1 = d.reg;
        r2 = mo.mem.base;
        out.disp = mo.mem.disp;
        primary_index = static_cast<int>(body_idx);
        output_bit = bit(d.reg);
        sim.set_reg(d.reg, OpSize::Dword, 0, false);
        continue;
      }
      // Incidental read: park the base register.
      out.scratch_addr_regs |= bit(mo.mem.base);
      // Fall through to the generic register-effect handling below.
    }

    // --- canonical register-to-register effects -----------------------------
    const bool could_be_primary = (type == GType::Transparent) && !fx.reads_mem;
    GType match = GType::Unusable;
    if (could_be_primary && insn.nops == 2 && is_reg32(d) && is_reg32(s)) {
      switch (insn.op) {
        case Mnemonic::MOV: match = GType::MovRegReg; break;
        case Mnemonic::ADD: match = GType::AddRegReg; break;
        case Mnemonic::SUB: match = GType::SubRegReg; break;
        case Mnemonic::XOR: match = GType::XorRegReg; break;
        case Mnemonic::AND: match = GType::AndRegReg; break;
        case Mnemonic::OR: match = GType::OrRegReg; break;
        case Mnemonic::CMP: match = GType::CmpRegReg; break;
        case Mnemonic::TEST: match = GType::TestRegReg; break;
        default: break;
      }
      // xor r,r / sub r,r zero the register — useful but generic clobber.
      if ((match == GType::XorRegReg || match == GType::SubRegReg) && d.reg == s.reg) {
        match = GType::Unusable;
      }
    }
    if (could_be_primary && insn.nops == 1 && is_reg32(d)) {
      if (insn.op == Mnemonic::NEG) match = GType::NegReg;
      if (insn.op == Mnemonic::NOT) match = GType::NotReg;
    }
    if (could_be_primary && insn.nops == 2 && is_reg32(d) &&
        s.kind == Operand::Kind::Reg && s.size == OpSize::Byte && s.reg == Reg::ECX &&
        d.reg != Reg::ECX) {
      if (insn.op == Mnemonic::SHL) match = GType::ShlClReg;
      if (insn.op == Mnemonic::SHR) match = GType::ShrClReg;
      if (insn.op == Mnemonic::SAR) match = GType::SarClReg;
    }
    if (could_be_primary && insn.op == Mnemonic::SETCC && is_low8(d)) {
      match = GType::SetccReg;
    }
    if (could_be_primary && insn.op == Mnemonic::MOVZX && is_reg32(d) && is_low8(s) &&
        parent_of(s) == d.reg) {
      match = GType::MovzxReg;
    }

    if (match != GType::Unusable) {
      type = match;
      primary_index = static_cast<int>(body_idx);
      r1 = (d.kind == Operand::Kind::Reg) ? parent_of(d) : Reg::NONE;
      r2 = (insn.nops >= 2 && s.kind == Operand::Kind::Reg) ? parent_of(s) : Reg::NONE;
      if (match == GType::SetccReg) {
        out.cond = static_cast<isa::CondId>(insn.cond);
        r2 = Reg::NONE;
      }
      if (match == GType::CmpRegReg || match == GType::TestRegReg) {
        output_bit = 0;  // output is flags
      } else {
        output_bit = bit(r1);
      }
      sim.set_reg(d.reg, d.size, 0, false);
      continue;
    }

    // --- generic side effect: track clobbers and constants -----------------
    std::uint16_t writes = fx.writes & ~kEspBit;
    if (writes & output_bit) demote();  // primary result destroyed
    out.clobbers |= writes;

    // Constant propagation for the handful of patterns we care about.
    if (insn.op == Mnemonic::MOV && d.kind == Operand::Kind::Reg &&
        s.kind == Operand::Kind::Imm) {
      sim.set_reg(d.reg, d.size, static_cast<std::uint32_t>(s.imm), true);
    } else if (insn.op == Mnemonic::AND && d.kind == Operand::Kind::Reg &&
               s.kind == Operand::Kind::Imm && s.imm == 0) {
      sim.set_reg(d.reg, d.size, 0, true);
    } else if ((insn.op == Mnemonic::XOR || insn.op == Mnemonic::SUB) &&
               d.kind == Operand::Kind::Reg && s.kind == Operand::Kind::Reg &&
               d.reg == s.reg && d.size == s.size) {
      sim.set_reg(d.reg, d.size, 0, true);
    } else if (d.kind == Operand::Kind::Reg) {
      sim.set_reg(d.reg, d.size, 0, false);
    } else if (writes) {
      // Conservatively forget every written register.
      for (int r = 0; r < 8; ++r) {
        if (writes & (1u << r)) sim.set_reg(static_cast<Reg>(r), OpSize::Dword, 0, false);
      }
    }
  }

  // A computational gadget whose incidental memory access goes through one
  // of its own operand registers cannot be parked (the operand holds an
  // arbitrary value / live address at that moment) — unusable. Transparent
  // gadgets park everything (all registers are dead at weave points), and
  // PopReg handles the conflict via selection (value_not_address).
  if (type != GType::Transparent && type != GType::PopReg &&
      type != GType::Unusable) {
    std::uint16_t operand_bits = 0;
    if (r1 != Reg::NONE) operand_bits |= bit(r1);
    if (r2 != Reg::NONE) operand_bits |= bit(r2);
    const bool pivot = type == GType::AddEspReg || type == GType::PopEsp;
    if ((out.scratch_addr_regs & operand_bits) ||
        (pivot && out.scratch_addr_regs != 0)) {
      out.type = GType::Unusable;
      out.cond = isa::kNoCond;
      return;
    }
  }

  // Flag-window safety relative to the primary effect.
  if (primary_index >= 0) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (static_cast<int>(i) == primary_index) continue;
      if (x86::reg_effects(body[i]).writes_flags) {
        if (static_cast<int>(i) < primary_index) {
          out.flags_clean_before_effect = false;
        } else {
          out.flags_clean_after_effect = false;
        }
      }
    }
  }

  // Primary outputs must not be reported as clobbers.
  if (r1 != Reg::NONE) out.clobbers &= static_cast<std::uint16_t>(~bit(r1));
  out.type = type;
  out.r1 = regid(r1);
  out.r2 = regid(r2);
  // Only setcc carries a condition; a demoted setcc match must not leak one.
  if (type != GType::SetccReg) out.cond = isa::kNoCond;
}

}  // namespace plx::x86

// x86 implementation of the §IV-B crafting rules' byte-level machinery:
// given real encoded bytes, decide whether placing a ret/retf opcode at a
// particular byte position creates a usable overlapping gadget, and locate
// the 32-bit immediate / displacement fields the rules may edit. Generic
// code reaches this through isa::Arch::rewrite_ops(); backend-level tests
// call it directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "isa/x86/insn.h"
#include "rewrite/rules.h"

namespace plx::x86 {

// The gadget that would exist if `buf[pos]` were set to `opcode` (0xc3/0xcb):
// the most-covering usable one, or nullopt.
std::optional<rewrite::PlantedGadget> try_plant_ret(
    std::span<const std::uint8_t> buf, std::size_t pos, std::uint8_t opcode,
    int max_insns = 6);

// §IV-B2: searches a library of gadget-body templates for the most useful
// fill of the free immediate bytes before the planted ret.
std::optional<rewrite::PlantedImmGadget> plant_in_imm_field(
    std::span<const std::uint8_t> buf, std::size_t field_off,
    int plant_rel,  // 0..3
    std::uint8_t opcode);

// True for the instruction families the paper applies the immediate rule to
// (add/adc/sub/sbb/mov with a 32-bit immediate field).
bool immediate_rule_applies(const Insn& insn);

// Weaker gate: the instruction family matches and it has a register
// destination with an immediate source, but the current encoding may be the
// short imm8 form — the rule still applies after *widening* to the imm32
// encoding (a semantics-preserving re-encoding the rewriter performs).
bool immediate_rule_candidate(const Insn& insn);

// Byte offsets (relative to the instruction start) of the 32-bit immediate
// field, if the *encoding* ends with an imm32. Empty otherwise.
std::optional<std::size_t> imm32_field_offset(const Insn& insn);

// True for rel32 branch encodings the jump rule can steer (jmp/jcc/call).
bool jump_rule_applies(const Insn& insn);

}  // namespace plx::x86

#include "isa/x86/rules.h"

#include <vector>

#include "isa/x86/classify.h"
#include "isa/x86/decoder.h"

namespace plx::x86 {

using rewrite::PlantedGadget;
using rewrite::PlantedImmGadget;

std::optional<PlantedGadget> try_plant_ret(std::span<const std::uint8_t> buf,
                                           std::size_t pos, std::uint8_t opcode,
                                           int max_insns) {
  if (pos >= buf.size()) return std::nullopt;
  std::vector<std::uint8_t> modified(buf.begin(), buf.end());
  modified[pos] = opcode;

  // Scan start offsets from furthest back (longest gadget first): the paper
  // wants maximal overlap with protected instructions.
  const std::size_t lo = pos > 24 ? pos - 24 : 0;
  for (std::size_t start = lo; start <= pos; ++start) {
    std::vector<Insn> insns;
    std::size_t cur = start;
    bool hit = false;
    for (int k = 0; k < max_insns; ++k) {
      auto insn = decode(std::span(modified).subspan(cur));
      if (!insn) break;
      insns.push_back(*insn);
      cur += insn->len;
      if (insn->is_ret()) {
        hit = (cur == pos + 1) ||
              (insn->nops == 1 && cur == pos + 3);  // ret imm16 planted at pos
        break;
      }
      if (insn->is_branch()) break;
      if (cur > pos) break;
    }
    if (!hit) continue;
    gadget::Gadget g;
    g.addr = static_cast<std::uint32_t>(start);
    g.len = static_cast<std::uint8_t>(cur - start);
    g.insns.reserve(insns.size());
    for (const Insn& i : insns) g.insns.push_back(to_isa(i));
    classify(insns, g);
    if (!g.usable()) continue;
    PlantedGadget out;
    out.start = start;
    out.end = cur;
    out.gadget = std::move(g);
    return out;
  }
  return std::nullopt;
}

namespace {

// Gadget-body byte templates, most useful first: computational bodies give
// the chain compiler material, plain pops/nops still verify their bytes.
const std::vector<std::vector<std::uint8_t>>& body_templates() {
  static const std::vector<std::vector<std::uint8_t>> kTemplates = {
      {0x01, 0xd0},        // add eax, edx
      {0x29, 0xd0},        // sub eax, edx
      {0x31, 0xd0},        // xor eax, edx
      {0x21, 0xd0},        // and eax, edx
      {0x09, 0xd0},        // or eax, edx
      {0x89, 0xc2},        // mov edx, eax
      {0x89, 0xd0},        // mov eax, edx
      {0x8b, 0x01},        // mov eax, [ecx]
      {0x89, 0x01},        // mov [ecx], eax
      {0xf7, 0xd8},        // neg eax
      {0xf7, 0xd0},        // not eax
      {0x39, 0xd0},        // cmp eax, edx
      {0xd3, 0xe0},        // shl eax, cl
      {0x0f, 0x94, 0xc0},  // sete al
      {0x0f, 0xb6, 0xc0},  // movzx eax, al
      {0x58},              // pop eax
      {0x59},              // pop ecx
      {0x5a},              // pop edx
      {0x5b},              // pop ebx
      {0x90},              // nop
      {},                  // bare ret
  };
  return kTemplates;
}

}  // namespace

std::optional<PlantedImmGadget> plant_in_imm_field(std::span<const std::uint8_t> buf,
                                                   std::size_t field_off,
                                                   int plant_rel,
                                                   std::uint8_t opcode) {
  if (plant_rel < 0 || plant_rel > 3) return std::nullopt;
  const std::size_t plant_pos = field_off + static_cast<std::size_t>(plant_rel);
  if (plant_pos >= buf.size() || field_off + 4 > buf.size()) return std::nullopt;

  std::optional<PlantedImmGadget> best;
  for (const auto& tpl : body_templates()) {
    if (tpl.size() > static_cast<std::size_t>(plant_rel)) continue;
    std::vector<std::uint8_t> modified(buf.begin(), buf.end());
    // [nop padding][template][ret] inside the free immediate bytes.
    const std::size_t pad = static_cast<std::size_t>(plant_rel) - tpl.size();
    for (std::size_t i = 0; i < pad; ++i) modified[field_off + i] = 0x90;
    for (std::size_t i = 0; i < tpl.size(); ++i) modified[field_off + pad + i] = tpl[i];
    modified[plant_pos] = opcode;

    auto planted = try_plant_ret(modified, plant_pos, opcode);
    if (!planted) continue;
    PlantedImmGadget out;
    out.planted = *planted;
    for (int b = 0; b < 4; ++b) {
      out.field[static_cast<std::size_t>(b)] = modified[field_off + static_cast<std::size_t>(b)];
    }
    // Prefer computational gadgets (earlier templates), then longer spans.
    if (!best || (best->planted.gadget.type == gadget::GType::Transparent &&
                  out.planted.gadget.type != gadget::GType::Transparent)) {
      best = out;
    }
    if (best->planted.gadget.type != gadget::GType::Transparent) break;
  }
  return best;
}

bool immediate_rule_applies(const Insn& insn) {
  return immediate_rule_candidate(insn) && imm32_field_offset(insn).has_value();
}

bool immediate_rule_candidate(const Insn& insn) {
  switch (insn.op) {
    case Mnemonic::ADD:
    case Mnemonic::ADC:
    case Mnemonic::SUB:
    case Mnemonic::SBB:
    case Mnemonic::MOV:
      break;
    default:
      return false;
  }
  return insn.opsize == OpSize::Dword && insn.nops >= 2 &&
         insn.ops[0].kind == Operand::Kind::Reg &&
         insn.ops[1].kind == Operand::Kind::Imm;
}

std::optional<std::size_t> imm32_field_offset(const Insn& insn) {
  if (insn.opsize != OpSize::Dword) return std::nullopt;
  if (insn.nops < 2 || insn.ops[1].kind != Operand::Kind::Imm) return std::nullopt;
  // Wide encodings place the imm32 in the last four bytes. `mov r32, imm32`
  // (0xb8+r) is always wide; group-1 / 0xc7 forms only when the encoder used
  // the imm32 form (wide_imm, or a value that does not fit in imm8).
  const bool always_wide = insn.op == Mnemonic::MOV &&
                           insn.ops[0].kind == Operand::Kind::Reg;
  const bool wide = always_wide || insn.wide_imm ||
                    insn.ops[1].imm < -128 || insn.ops[1].imm > 127;
  if (!wide) return std::nullopt;
  if (insn.len < 5) return std::nullopt;
  return static_cast<std::size_t>(insn.len) - 4;
}

bool jump_rule_applies(const Insn& insn) {
  if (!insn.is_branch()) return false;
  if (insn.ops[0].kind != Operand::Kind::Rel) return false;
  // rel32 forms only: len >= 5 (jmp/call) or 6 (jcc).
  return insn.len >= 5;
}

}  // namespace plx::x86

// x86-32 instruction encoder.
//
// The inverse of the decoder: turns an Insn into machine bytes. Used by the
// assembler, the mini-C backend, the rewriter (which needs precise control
// over encoding forms — e.g. forcing a 4-byte immediate so a gadget byte can
// be placed inside it, via Insn::wide_imm) and the verification-stub emitter.
#pragma once

#include <cstdint>

#include "support/buffer.h"
#include "support/error.h"
#include "isa/x86/insn.h"

namespace plx::x86 {

// Appends the encoding of `insn` to `out`; returns the number of bytes
// written, or an error for operand combinations outside the supported ISA
// subset. Round-trip property: decode(encode(i)) produces an equivalent Insn.
Result<int> encode(const Insn& insn, Buffer& out);

// Convenience: encode into a fresh buffer, asserting success. For call sites
// constructing known-valid instructions (stub emitters, tests).
Buffer encode_must(const Insn& insn);

}  // namespace plx::x86

#include "isa/x86/encoder.h"

#include <cassert>
#include <cstdlib>

namespace plx::x86 {

namespace {

inline plx::Diag enc_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::EncodeError, "x86.encode", std::move(msg));
}


bool fits_i8(std::int32_t v) { return v >= -128 && v <= 127; }

bool is_reg(const Operand& o) { return o.kind == Operand::Kind::Reg; }
bool is_imm(const Operand& o) { return o.kind == Operand::Kind::Imm; }
bool is_mem(const Operand& o) { return o.kind == Operand::Kind::Mem; }
bool is_rel(const Operand& o) { return o.kind == Operand::Kind::Rel; }

std::uint8_t regnum(Reg r) { return static_cast<std::uint8_t>(r); }

// Emits ModRM (+SIB +disp) for an r/m operand with the given /reg field.
Result<int> emit_modrm(const Operand& rm, std::uint8_t reg_field, Buffer& out) {
  const std::size_t start = out.size();
  if (is_reg(rm)) {
    out.put_u8(static_cast<std::uint8_t>(0xc0 | (reg_field << 3) | regnum(rm.reg)));
    return static_cast<int>(out.size() - start);
  }
  if (!is_mem(rm)) return enc_fail("emit_modrm: operand is neither reg nor mem");

  const Mem& m = rm.mem;
  const bool has_index = m.index != Reg::NONE;
  if (has_index && m.index == Reg::ESP) return enc_fail("esp cannot be an index register");

  // Absolute [disp32] (no base, no index): mod=00 rm=101.
  if (m.base == Reg::NONE && !has_index) {
    out.put_u8(static_cast<std::uint8_t>(0x00 | (reg_field << 3) | 5));
    out.put_u32(static_cast<std::uint32_t>(m.disp));
    return static_cast<int>(out.size() - start);
  }
  if (m.base == Reg::NONE && has_index) {
    // [index*scale + disp32]: mod=00 rm=100, SIB base=101.
    std::uint8_t ss = 0;
    switch (m.scale) {
      case 1: ss = 0; break;
      case 2: ss = 1; break;
      case 4: ss = 2; break;
      case 8: ss = 3; break;
      default: return enc_fail("bad scale");
    }
    out.put_u8(static_cast<std::uint8_t>(0x00 | (reg_field << 3) | 4));
    out.put_u8(static_cast<std::uint8_t>((ss << 6) | (regnum(m.index) << 3) | 5));
    out.put_u32(static_cast<std::uint32_t>(m.disp));
    return static_cast<int>(out.size() - start);
  }

  // Pick displacement size. [ebp] with no displacement still needs disp8=0.
  std::uint8_t mod;
  if (m.disp == 0 && m.base != Reg::EBP) {
    mod = 0;
  } else if (fits_i8(m.disp)) {
    mod = 1;
  } else {
    mod = 2;
  }

  const bool needs_sib = has_index || m.base == Reg::ESP;
  if (needs_sib) {
    std::uint8_t ss = 0;
    switch (m.scale) {
      case 1: ss = 0; break;
      case 2: ss = 1; break;
      case 4: ss = 2; break;
      case 8: ss = 3; break;
      default: return enc_fail("bad scale");
    }
    const std::uint8_t index_bits = has_index ? regnum(m.index) : 4;
    out.put_u8(static_cast<std::uint8_t>((mod << 6) | (reg_field << 3) | 4));
    out.put_u8(static_cast<std::uint8_t>((ss << 6) | (index_bits << 3) | regnum(m.base)));
  } else {
    out.put_u8(static_cast<std::uint8_t>((mod << 6) | (reg_field << 3) | regnum(m.base)));
  }
  if (mod == 1) {
    out.put_u8(static_cast<std::uint8_t>(m.disp));
  } else if (mod == 2) {
    out.put_u32(static_cast<std::uint32_t>(m.disp));
  }
  return static_cast<int>(out.size() - start);
}

// Index of an ALU mnemonic in the add/or/adc/sbb/and/sub/xor/cmp row, or -1.
int alu_index(Mnemonic m) {
  switch (m) {
    case Mnemonic::ADD: return 0;
    case Mnemonic::OR: return 1;
    case Mnemonic::ADC: return 2;
    case Mnemonic::SBB: return 3;
    case Mnemonic::AND: return 4;
    case Mnemonic::SUB: return 5;
    case Mnemonic::XOR: return 6;
    case Mnemonic::CMP: return 7;
    default: return -1;
  }
}

int shift_ext(Mnemonic m) {
  switch (m) {
    case Mnemonic::ROL: return 0;
    case Mnemonic::ROR: return 1;
    case Mnemonic::SHL: return 4;
    case Mnemonic::SHR: return 5;
    case Mnemonic::SAR: return 7;
    default: return -1;
  }
}

Result<int> encode_alu(const Insn& insn, Buffer& out) {
  const int idx = alu_index(insn.op);
  assert(idx >= 0);
  const auto base = static_cast<std::uint8_t>(idx << 3);
  const std::size_t start = out.size();
  const Operand& dst = insn.ops[0];
  const Operand& src = insn.ops[1];
  const bool byte_op = insn.opsize == OpSize::Byte;

  if (is_imm(src)) {
    if (byte_op) {
      if (is_reg(dst) && dst.reg == Reg::EAX && !insn.wide_imm) {
        out.put_u8(static_cast<std::uint8_t>(base + 4));  // op AL, imm8
        out.put_u8(static_cast<std::uint8_t>(src.imm));
        return static_cast<int>(out.size() - start);
      }
      out.put_u8(0x80);
      auto r = emit_modrm(dst, static_cast<std::uint8_t>(idx), out);
      if (!r) return r;
      out.put_u8(static_cast<std::uint8_t>(src.imm));
      return static_cast<int>(out.size() - start);
    }
    if (fits_i8(src.imm) && !insn.wide_imm) {
      out.put_u8(0x83);
      auto r = emit_modrm(dst, static_cast<std::uint8_t>(idx), out);
      if (!r) return r;
      out.put_u8(static_cast<std::uint8_t>(src.imm));
      return static_cast<int>(out.size() - start);
    }
    out.put_u8(0x81);
    auto r = emit_modrm(dst, static_cast<std::uint8_t>(idx), out);
    if (!r) return r;
    out.put_u32(static_cast<std::uint32_t>(src.imm));
    return static_cast<int>(out.size() - start);
  }

  if (is_reg(src)) {  // r/m, r  (MR form)
    out.put_u8(static_cast<std::uint8_t>(base + (byte_op ? 0 : 1)));
    auto r = emit_modrm(dst, regnum(src.reg), out);
    if (!r) return r;
    return static_cast<int>(out.size() - start);
  }
  if (is_mem(src) && is_reg(dst)) {  // r, r/m  (RM form)
    out.put_u8(static_cast<std::uint8_t>(base + (byte_op ? 2 : 3)));
    auto r = emit_modrm(src, regnum(dst.reg), out);
    if (!r) return r;
    return static_cast<int>(out.size() - start);
  }
  return enc_fail("unsupported ALU operand combination");
}

Result<int> encode_mov(const Insn& insn, Buffer& out) {
  const std::size_t start = out.size();
  const Operand& dst = insn.ops[0];
  const Operand& src = insn.ops[1];
  const bool byte_op = insn.opsize == OpSize::Byte;

  if (is_imm(src)) {
    if (is_reg(dst)) {
      if (byte_op) {
        out.put_u8(static_cast<std::uint8_t>(0xb0 + regnum(dst.reg)));
        out.put_u8(static_cast<std::uint8_t>(src.imm));
      } else {
        out.put_u8(static_cast<std::uint8_t>(0xb8 + regnum(dst.reg)));
        out.put_u32(static_cast<std::uint32_t>(src.imm));
      }
      return static_cast<int>(out.size() - start);
    }
    out.put_u8(byte_op ? 0xc6 : 0xc7);
    auto r = emit_modrm(dst, 0, out);
    if (!r) return r;
    if (byte_op) {
      out.put_u8(static_cast<std::uint8_t>(src.imm));
    } else {
      out.put_u32(static_cast<std::uint32_t>(src.imm));
    }
    return static_cast<int>(out.size() - start);
  }
  if (is_reg(src)) {  // MR form
    out.put_u8(byte_op ? 0x88 : 0x89);
    auto r = emit_modrm(dst, regnum(src.reg), out);
    if (!r) return r;
    return static_cast<int>(out.size() - start);
  }
  if (is_mem(src) && is_reg(dst)) {  // RM form
    out.put_u8(byte_op ? 0x8a : 0x8b);
    auto r = emit_modrm(src, regnum(dst.reg), out);
    if (!r) return r;
    return static_cast<int>(out.size() - start);
  }
  return enc_fail("unsupported MOV operand combination");
}

}  // namespace

Result<int> encode(const Insn& insn, Buffer& out) {
  const std::size_t start = out.size();
  const Operand& op0 = insn.ops[0];
  const Operand& op1 = insn.ops[1];

  switch (insn.op) {
    case Mnemonic::ADD:
    case Mnemonic::OR:
    case Mnemonic::ADC:
    case Mnemonic::SBB:
    case Mnemonic::AND:
    case Mnemonic::SUB:
    case Mnemonic::XOR:
    case Mnemonic::CMP:
      return encode_alu(insn, out);

    case Mnemonic::MOV:
      return encode_mov(insn, out);

    case Mnemonic::TEST: {
      const bool byte_op = insn.opsize == OpSize::Byte;
      if (is_imm(op1)) {
        out.put_u8(byte_op ? 0xf6 : 0xf7);
        auto r = emit_modrm(op0, 0, out);
        if (!r) return r;
        if (byte_op) {
          out.put_u8(static_cast<std::uint8_t>(op1.imm));
        } else {
          out.put_u32(static_cast<std::uint32_t>(op1.imm));
        }
        return static_cast<int>(out.size() - start);
      }
      if (is_reg(op1)) {
        out.put_u8(byte_op ? 0x84 : 0x85);
        auto r = emit_modrm(op0, regnum(op1.reg), out);
        if (!r) return r;
        return static_cast<int>(out.size() - start);
      }
      return enc_fail("unsupported TEST operands");
    }

    case Mnemonic::LEA: {
      if (!is_reg(op0) || !is_mem(op1)) return enc_fail("LEA needs reg, mem");
      out.put_u8(0x8d);
      auto r = emit_modrm(op1, regnum(op0.reg), out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::XCHG: {
      const bool byte_op = insn.opsize == OpSize::Byte;
      if (!is_reg(op1)) return enc_fail("XCHG second operand must be reg");
      out.put_u8(byte_op ? 0x86 : 0x87);
      auto r = emit_modrm(op0, regnum(op1.reg), out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::PUSH: {
      if (is_reg(op0)) {
        out.put_u8(static_cast<std::uint8_t>(0x50 + regnum(op0.reg)));
        return static_cast<int>(out.size() - start);
      }
      if (is_imm(op0)) {
        if (fits_i8(op0.imm) && !insn.wide_imm) {
          out.put_u8(0x6a);
          out.put_u8(static_cast<std::uint8_t>(op0.imm));
        } else {
          out.put_u8(0x68);
          out.put_u32(static_cast<std::uint32_t>(op0.imm));
        }
        return static_cast<int>(out.size() - start);
      }
      if (is_mem(op0)) {
        out.put_u8(0xff);
        auto r = emit_modrm(op0, 6, out);
        if (!r) return r;
        return static_cast<int>(out.size() - start);
      }
      return enc_fail("unsupported PUSH operand");
    }

    case Mnemonic::POP: {
      if (is_reg(op0)) {
        out.put_u8(static_cast<std::uint8_t>(0x58 + regnum(op0.reg)));
        return static_cast<int>(out.size() - start);
      }
      if (is_mem(op0)) {
        out.put_u8(0x8f);
        auto r = emit_modrm(op0, 0, out);
        if (!r) return r;
        return static_cast<int>(out.size() - start);
      }
      return enc_fail("unsupported POP operand");
    }

    case Mnemonic::PUSHAD: out.put_u8(0x60); return 1;
    case Mnemonic::POPAD: out.put_u8(0x61); return 1;
    case Mnemonic::PUSHFD: out.put_u8(0x9c); return 1;
    case Mnemonic::POPFD: out.put_u8(0x9d); return 1;

    case Mnemonic::INC:
    case Mnemonic::DEC: {
      const bool inc = insn.op == Mnemonic::INC;
      if (insn.opsize == OpSize::Dword && is_reg(op0)) {
        out.put_u8(static_cast<std::uint8_t>((inc ? 0x40 : 0x48) + regnum(op0.reg)));
        return 1;
      }
      out.put_u8(insn.opsize == OpSize::Byte ? 0xfe : 0xff);
      auto r = emit_modrm(op0, inc ? 0 : 1, out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::NOT:
    case Mnemonic::NEG:
    case Mnemonic::MUL:
    case Mnemonic::DIV:
    case Mnemonic::IDIV: {
      std::uint8_t ext = 0;
      switch (insn.op) {
        case Mnemonic::NOT: ext = 2; break;
        case Mnemonic::NEG: ext = 3; break;
        case Mnemonic::MUL: ext = 4; break;
        case Mnemonic::DIV: ext = 6; break;
        case Mnemonic::IDIV: ext = 7; break;
        default: break;
      }
      out.put_u8(insn.opsize == OpSize::Byte ? 0xf6 : 0xf7);
      auto r = emit_modrm(op0, ext, out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::IMUL: {
      if (insn.nops <= 1) {  // one-operand form, edx:eax = eax * r/m
        out.put_u8(insn.opsize == OpSize::Byte ? 0xf6 : 0xf7);
        auto r = emit_modrm(op0, 5, out);
        if (!r) return r;
        return static_cast<int>(out.size() - start);
      }
      if (insn.nops == 2) {  // imul r32, r/m32
        if (!is_reg(op0)) return enc_fail("IMUL dst must be reg");
        out.put_u8(0x0f);
        out.put_u8(0xaf);
        auto r = emit_modrm(op1, regnum(op0.reg), out);
        if (!r) return r;
        return static_cast<int>(out.size() - start);
      }
      // imul r32, r/m32, imm
      if (!is_reg(op0) || !is_imm(insn.ops[2])) return enc_fail("bad 3-op IMUL");
      const std::int32_t imm = insn.ops[2].imm;
      if (fits_i8(imm) && !insn.wide_imm) {
        out.put_u8(0x6b);
        auto r = emit_modrm(op1, regnum(op0.reg), out);
        if (!r) return r;
        out.put_u8(static_cast<std::uint8_t>(imm));
      } else {
        out.put_u8(0x69);
        auto r = emit_modrm(op1, regnum(op0.reg), out);
        if (!r) return r;
        out.put_u32(static_cast<std::uint32_t>(imm));
      }
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::ROL:
    case Mnemonic::ROR:
    case Mnemonic::SHL:
    case Mnemonic::SHR:
    case Mnemonic::SAR: {
      const int ext = shift_ext(insn.op);
      const bool byte_op = insn.opsize == OpSize::Byte;
      if (is_imm(op1)) {
        if (op1.imm == 1) {
          out.put_u8(byte_op ? 0xd0 : 0xd1);
          auto r = emit_modrm(op0, static_cast<std::uint8_t>(ext), out);
          if (!r) return r;
        } else {
          out.put_u8(byte_op ? 0xc0 : 0xc1);
          auto r = emit_modrm(op0, static_cast<std::uint8_t>(ext), out);
          if (!r) return r;
          out.put_u8(static_cast<std::uint8_t>(op1.imm));
        }
        return static_cast<int>(out.size() - start);
      }
      if (is_reg(op1) && op1.reg == Reg::ECX && op1.size == OpSize::Byte) {
        out.put_u8(byte_op ? 0xd2 : 0xd3);
        auto r = emit_modrm(op0, static_cast<std::uint8_t>(ext), out);
        if (!r) return r;
        return static_cast<int>(out.size() - start);
      }
      return enc_fail("shift count must be imm or cl");
    }

    case Mnemonic::JMP: {
      if (is_rel(op0)) {
        if (fits_i8(op0.rel) && !insn.wide_imm) {
          out.put_u8(0xeb);
          out.put_u8(static_cast<std::uint8_t>(op0.rel));
        } else {
          out.put_u8(0xe9);
          out.put_u32(static_cast<std::uint32_t>(op0.rel));
        }
        return static_cast<int>(out.size() - start);
      }
      out.put_u8(0xff);
      auto r = emit_modrm(op0, 4, out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::JCC: {
      if (!is_rel(op0)) return enc_fail("JCC needs rel operand");
      if (fits_i8(op0.rel) && !insn.wide_imm) {
        out.put_u8(static_cast<std::uint8_t>(0x70 + static_cast<std::uint8_t>(insn.cond)));
        out.put_u8(static_cast<std::uint8_t>(op0.rel));
      } else {
        out.put_u8(0x0f);
        out.put_u8(static_cast<std::uint8_t>(0x80 + static_cast<std::uint8_t>(insn.cond)));
        out.put_u32(static_cast<std::uint32_t>(op0.rel));
      }
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::CALL: {
      if (is_rel(op0)) {
        out.put_u8(0xe8);
        out.put_u32(static_cast<std::uint32_t>(op0.rel));
        return static_cast<int>(out.size() - start);
      }
      out.put_u8(0xff);
      auto r = emit_modrm(op0, 2, out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::RET:
      if (insn.nops == 1 && is_imm(op0)) {
        out.put_u8(0xc2);
        out.put_u16(static_cast<std::uint16_t>(op0.imm));
      } else {
        out.put_u8(0xc3);
      }
      return static_cast<int>(out.size() - start);

    case Mnemonic::RETF:
      if (insn.nops == 1 && is_imm(op0)) {
        out.put_u8(0xca);
        out.put_u16(static_cast<std::uint16_t>(op0.imm));
      } else {
        out.put_u8(0xcb);
      }
      return static_cast<int>(out.size() - start);

    case Mnemonic::LEAVE: out.put_u8(0xc9); return 1;

    case Mnemonic::SETCC: {
      out.put_u8(0x0f);
      out.put_u8(static_cast<std::uint8_t>(0x90 + static_cast<std::uint8_t>(insn.cond)));
      auto r = emit_modrm(op0, 0, out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::MOVZX:
    case Mnemonic::MOVSX: {
      if (!is_reg(op0)) return enc_fail("MOVZX/MOVSX dst must be reg");
      const bool zx = insn.op == Mnemonic::MOVZX;
      const bool word_src = op1.size == OpSize::Word;
      out.put_u8(0x0f);
      out.put_u8(static_cast<std::uint8_t>((zx ? 0xb6 : 0xbe) + (word_src ? 1 : 0)));
      auto r = emit_modrm(op1, regnum(op0.reg), out);
      if (!r) return r;
      return static_cast<int>(out.size() - start);
    }

    case Mnemonic::NOP: out.put_u8(0x90); return 1;
    case Mnemonic::CDQ: out.put_u8(0x99); return 1;
    case Mnemonic::INT3: out.put_u8(0xcc); return 1;
    case Mnemonic::INT:
      out.put_u8(0xcd);
      out.put_u8(static_cast<std::uint8_t>(op0.imm));
      return 2;
    case Mnemonic::HLT: out.put_u8(0xf4); return 1;
    case Mnemonic::CLC: out.put_u8(0xf8); return 1;
    case Mnemonic::STC: out.put_u8(0xf9); return 1;
    case Mnemonic::CMC: out.put_u8(0xf5); return 1;
    case Mnemonic::CLD: out.put_u8(0xfc); return 1;
    case Mnemonic::STD: out.put_u8(0xfd); return 1;

    case Mnemonic::INVALID:
      return enc_fail("cannot encode INVALID");
  }
  return enc_fail("unreachable");
}

Buffer encode_must(const Insn& insn) {
  Buffer out;
  auto r = encode(insn, out);
  if (!r) {
    assert(false && "encode_must failed");
    std::abort();
  }
  return out;
}

}  // namespace plx::x86

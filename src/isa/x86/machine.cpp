#include "isa/x86/machine.h"

#include <algorithm>
#include <cstring>

#include "isa/x86/decoder.h"

namespace plx::x86 {

using vm::FuncStats;
using vm::RunResult;
using vm::StopReason;

namespace {

// Flag computation for the specialised ALU fast-ops; bit-for-bit the same as
// ExecCtx::do_add / do_sub / set_szp in exec.cpp for dword operands.
bool parity_even(std::uint32_t v) {
  v &= 0xff;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return (v & 1) == 0;
}

void set_flag(std::uint32_t& eflags, std::uint32_t f, bool v) {
  if (v) {
    eflags |= f;
  } else {
    eflags &= ~f;
  }
}

void set_szp(std::uint32_t& eflags, std::uint32_t res) {
  set_flag(eflags, kZF, res == 0);
  set_flag(eflags, kSF, (res & 0x80000000u) != 0);
  set_flag(eflags, kPF, parity_even(res));
}

std::uint32_t fast_add32(std::uint32_t& eflags, std::uint32_t a, std::uint32_t b) {
  const std::uint64_t wide = static_cast<std::uint64_t>(a) + b;
  const std::uint32_t res = static_cast<std::uint32_t>(wide);
  set_flag(eflags, kCF, wide > 0xffffffffu);
  set_flag(eflags, kOF, ((a ^ res) & (b ^ res) & 0x80000000u) != 0);
  set_szp(eflags, res);
  return res;
}

std::uint32_t fast_sub32(std::uint32_t& eflags, std::uint32_t a, std::uint32_t b) {
  const std::uint32_t res = a - b;
  set_flag(eflags, kCF, a < b);
  set_flag(eflags, kOF, ((a ^ b) & (a ^ res) & 0x80000000u) != 0);
  set_szp(eflags, res);
  return res;
}

// Same table as ExecCtx::cond_true.
bool cond_true(std::uint32_t eflags, x86::Cond c) {
  const auto flag = [eflags](std::uint32_t f) { return (eflags & f) != 0; };
  switch (c) {
    case x86::Cond::O: return flag(kOF);
    case x86::Cond::NO: return !flag(kOF);
    case x86::Cond::B: return flag(kCF);
    case x86::Cond::AE: return !flag(kCF);
    case x86::Cond::E: return flag(kZF);
    case x86::Cond::NE: return !flag(kZF);
    case x86::Cond::BE: return flag(kCF) || flag(kZF);
    case x86::Cond::A: return !flag(kCF) && !flag(kZF);
    case x86::Cond::S: return flag(kSF);
    case x86::Cond::NS: return !flag(kSF);
    case x86::Cond::P: return flag(kPF);
    case x86::Cond::NP: return !flag(kPF);
    case x86::Cond::L: return flag(kSF) != flag(kOF);
    case x86::Cond::GE: return flag(kSF) == flag(kOF);
    case x86::Cond::LE: return flag(kZF) || (flag(kSF) != flag(kOF));
    case x86::Cond::G: return !flag(kZF) && (flag(kSF) == flag(kOF));
  }
  return false;
}

}  // namespace

Machine::Machine(const img::Image& image) {
  for (const auto& sec : image.sections) {
    Region r;
    r.name = sec.name;
    r.base = sec.vaddr;
    r.perms = sec.perms;
    r.bytes = sec.bytes.vec();
    regions_.push_back(std::move(r));
  }
  // Stack region.
  Region stack;
  stack.name = "[stack]";
  stack.base = img::kStackTop - img::kStackSize;
  stack.perms = img::kPermRead | img::kPermWrite;
  stack.bytes.resize(img::kStackSize);
  regions_.push_back(std::move(stack));

  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });

  // Region perms never change after construction, so the executable spans —
  // the only places a predecode window can start — are fixed now. Must be
  // ready before the first write_mem below.
  for (const auto& r : regions_) {
    if (r.perms & img::kPermExec) {
      exec_spans_.emplace_back(r.base,
                               r.base + static_cast<std::uint32_t>(r.bytes.size()));
    }
  }

  for (const auto& sym : image.symbols) {
    if (!sym.is_func || sym.size == 0) continue;
    funcs_.push_back(FuncSpan{sym.vaddr, sym.vaddr + sym.size, sym.name});
  }
  std::sort(funcs_.begin(), funcs_.end(),
            [](const FuncSpan& a, const FuncSpan& b) { return a.lo < b.lo; });
  func_stats_.assign(funcs_.size(), FuncStats{});

  eip = image.entry;
  gpr(x86::Reg::ESP) = img::kStackTop - 16;
  // Push the exit sentinel as the entry function's return address.
  gpr(x86::Reg::ESP) -= 4;
  write_u32(gpr(x86::Reg::ESP), kExitSentinel);
}

Machine::Region* Machine::region_at(std::uint32_t addr) {
  for (auto& r : regions_) {
    if (r.contains(addr)) return &r;
  }
  return nullptr;
}

const Machine::Region* Machine::region_at(std::uint32_t addr) const {
  for (const auto& r : regions_) {
    if (r.contains(addr)) return &r;
  }
  return nullptr;
}

bool Machine::mutation_hits_exec(std::uint32_t addr, std::uint32_t n) const {
  // A cached decode window starts inside an executable region and covers at
  // most 15 bytes, so a mutation of [addr, addr+n) can only affect windows
  // starting in [addr-14, addr+n).
  const std::uint32_t lo = addr >= 14 ? addr - 14 : 0;
  const std::uint64_t hi = static_cast<std::uint64_t>(addr) + n;
  for (const auto& [slo, shi] : exec_spans_) {
    if (lo < shi && hi > slo) return true;
  }
  return false;
}

bool Machine::read_mem(std::uint32_t addr, void* out, std::uint32_t n) {
  Region* r = data_region_cache_;
  if (!r || !r->contains(addr)) {
    r = region_at(addr);
    if (r) data_region_cache_ = r;
  }
  if (!r || !r->contains(addr + n - 1)) {
    fault("read fault");
    return false;
  }
  if (!(r->perms & img::kPermRead)) {
    fault("read from non-readable region " + r->name);
    return false;
  }
  std::memcpy(out, r->bytes.data() + (addr - r->base), n);
  return true;
}

bool Machine::write_mem(std::uint32_t addr, const void* in, std::uint32_t n) {
  Region* r = data_region_cache_;
  if (!r || !r->contains(addr)) {
    r = region_at(addr);
    if (r) data_region_cache_ = r;
  }
  if (!r || !r->contains(addr + n - 1)) {
    fault("write fault");
    return false;
  }
  if (!(r->perms & img::kPermWrite)) {
    fault("write to non-writable region " + r->name);
    return false;
  }
  std::memcpy(r->bytes.data() + (addr - r->base), in, n);
  // A legitimate store re-synchronises the fetch view (cache coherence on a
  // write; the Wurster attack specifically avoids going through this path).
  if (!icache_overlay_.empty()) {
    for (std::uint32_t i = 0; i < n; ++i) icache_overlay_.erase(addr + i);
  }
  if (mutation_hits_exec(addr, n)) invalidate_predecode();
  return true;
}

std::uint32_t Machine::read_u32(std::uint32_t addr, bool& ok) {
  std::uint32_t v = 0;
  ok = read_mem(addr, &v, 4);
  return v;
}

std::uint16_t Machine::read_u16(std::uint32_t addr, bool& ok) {
  std::uint16_t v = 0;
  ok = read_mem(addr, &v, 2);
  return v;
}

std::uint8_t Machine::read_u8(std::uint32_t addr, bool& ok) {
  std::uint8_t v = 0;
  ok = read_mem(addr, &v, 1);
  return v;
}

bool Machine::write_u32(std::uint32_t addr, std::uint32_t v) { return write_mem(addr, &v, 4); }
bool Machine::write_u16(std::uint32_t addr, std::uint16_t v) { return write_mem(addr, &v, 2); }
bool Machine::write_u8(std::uint32_t addr, std::uint8_t v) { return write_mem(addr, &v, 1); }

void Machine::tamper(std::uint32_t addr, std::uint8_t byte) {
  Region* r = region_at(addr);
  if (!r) return;
  r->bytes[addr - r->base] = byte;
  icache_overlay_.erase(addr);
  invalidate_predecode();
}

void Machine::tamper(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) tamper(addr + static_cast<std::uint32_t>(i), bytes[i]);
}

void Machine::tamper_icache(std::uint32_t addr, std::uint8_t byte) {
  icache_overlay_[addr] = byte;
  invalidate_predecode();
}

void Machine::tamper_icache(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    icache_overlay_[addr + static_cast<std::uint32_t>(i)] = bytes[i];
  }
  invalidate_predecode();
}

Machine::Snapshot Machine::snapshot() const {
  Snapshot s;
  s.regs.assign(std::begin(reg), std::end(reg));
  s.pc = eip;
  s.flags = eflags;
  s.region_bytes.reserve(regions_.size());
  for (const auto& r : regions_) s.region_bytes.push_back(r.bytes);
  s.icache_overlay = icache_overlay_;
  s.result = result_;
  s.stopped = stopped_;
  s.output = output;
  s.input = input;
  s.input_pos = input_pos;
  s.debugger_attached = debugger_attached;
  s.time_value = time_value;
  s.rng = rng;
  s.syscall_counts = syscall_counts;
  s.syscall_digest = syscall_digest;
  s.func_stats = func_stats_;
  return s;
}

void Machine::restore(const Snapshot& s) {
  if (s.region_bytes.size() != regions_.size() ||
      s.regs.size() != std::size(reg)) {
    return;  // foreign snapshot
  }
  std::copy(s.regs.begin(), s.regs.end(), std::begin(reg));
  eip = s.pc;
  eflags = s.flags;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    // Region extents are immutable after construction; only content reverts.
    std::copy(s.region_bytes[i].begin(), s.region_bytes[i].end(),
              regions_[i].bytes.begin());
  }
  icache_overlay_ = s.icache_overlay;
  result_ = s.result;
  stopped_ = s.stopped;
  output = s.output;
  input = s.input;
  input_pos = s.input_pos;
  debugger_attached = s.debugger_attached;
  time_value = s.time_value;
  rng = s.rng;
  syscall_counts = s.syscall_counts;
  syscall_digest = s.syscall_digest;
  func_stats_ = s.func_stats;
  last_func_ = 0;
  profile_dirty_ = true;
  // The restored code bytes / overlay may differ from what the warm cache
  // decoded — drop it, exactly like tamper() does.
  invalidate_predecode();
}

std::uint64_t Machine::state_digest() const {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * kPrime;
    }
  };
  for (std::uint32_t r : reg) mix32(r);
  mix32(eflags);
  for (const auto& r : regions_) {
    if (!(r.perms & img::kPermWrite)) continue;
    for (std::uint8_t b : r.bytes) h = (h ^ b) * kPrime;
  }
  return h;
}

std::uint8_t Machine::fetch_u8(std::uint32_t addr, bool& ok) const {
  auto it = icache_overlay_.find(addr);
  if (it != icache_overlay_.end()) {
    ok = true;
    return it->second;
  }
  const Region* r = region_at(addr);
  if (!r) {
    ok = false;
    return 0;
  }
  ok = true;
  return r->bytes[addr - r->base];
}

void Machine::fault(const std::string& what) {
  if (stopped_) return;
  result_.reason = StopReason::Fault;
  result_.fault = what;
  result_.fault_eip = eip;
  stopped_ = true;
}

int Machine::func_index_at(std::uint32_t addr) {
  if (last_func_ != 0) {
    const FuncSpan& f = funcs_[last_func_ - 1];
    if (addr >= f.lo && addr < f.hi) return static_cast<int>(last_func_ - 1);
  }
  // funcs_ sorted by lo; find last span with lo <= addr.
  auto it = std::upper_bound(funcs_.begin(), funcs_.end(), addr,
                             [](std::uint32_t a, const FuncSpan& f) { return a < f.lo; });
  if (it == funcs_.begin()) return -1;
  --it;
  if (addr >= it->hi) return -1;
  const auto idx = static_cast<std::size_t>(it - funcs_.begin());
  last_func_ = idx + 1;
  return static_cast<int>(idx);
}

const std::map<std::string, FuncStats>& Machine::profile() const {
  if (profile_dirty_) {
    profile_.clear();
    for (std::size_t i = 0; i < funcs_.size(); ++i) {
      const FuncStats& st = func_stats_[i];
      if (st.cycles == 0 && st.instructions == 0 && st.calls == 0) continue;
      FuncStats& dst = profile_[funcs_[i].name];
      dst.cycles += st.cycles;
      dst.instructions += st.instructions;
      dst.calls += st.calls;
    }
    profile_dirty_ = false;
  }
  return profile_;
}

void Machine::classify_fast(Predecoded& p) {
  const x86::Insn& insn = p.insn;
  p.len = insn.len;
  p.fast = FastOp::None;
  if (insn.op == x86::Mnemonic::RET && insn.nops == 0) {
    p.fast = FastOp::RetN;
    return;
  }
  if (insn.op == x86::Mnemonic::PUSH) {
    if (insn.ops[0].kind == x86::Operand::Kind::Imm) {
      p.fast = FastOp::PushI;
      p.imm = insn.ops[0].imm;
    } else if (insn.ops[0].kind == x86::Operand::Kind::Reg &&
               insn.ops[0].size == x86::OpSize::Dword) {
      p.fast = FastOp::PushR;
      p.r1 = static_cast<std::uint8_t>(insn.ops[0].reg);
    }
    return;
  }
  if (insn.op == x86::Mnemonic::POP &&
      insn.ops[0].kind == x86::Operand::Kind::Reg &&
      insn.ops[0].size == x86::OpSize::Dword) {
    p.fast = FastOp::PopR;
    p.r1 = static_cast<std::uint8_t>(insn.ops[0].reg);
    return;
  }
  if (insn.op == x86::Mnemonic::JMP &&
      insn.ops[0].kind == x86::Operand::Kind::Rel) {
    p.fast = FastOp::JmpRel;
    p.imm = insn.ops[0].rel;
    return;
  }
  if (insn.op == x86::Mnemonic::JCC &&
      insn.ops[0].kind == x86::Operand::Kind::Rel) {
    p.fast = FastOp::JccRel;
    p.imm = insn.ops[0].rel;
    p.aux = static_cast<std::uint8_t>(insn.cond);
    return;
  }
  const bool is_add = insn.op == x86::Mnemonic::ADD;
  const bool is_sub = insn.op == x86::Mnemonic::SUB;
  const bool is_cmp = insn.op == x86::Mnemonic::CMP;
  if ((is_add || is_sub || is_cmp) && insn.opsize == x86::OpSize::Dword &&
      insn.ops[0].kind == x86::Operand::Kind::Reg &&
      insn.ops[0].size == x86::OpSize::Dword) {
    p.r1 = static_cast<std::uint8_t>(insn.ops[0].reg);
    if (insn.ops[1].kind == x86::Operand::Kind::Reg &&
        insn.ops[1].size == x86::OpSize::Dword) {
      p.r2 = static_cast<std::uint8_t>(insn.ops[1].reg);
      p.fast = is_add ? FastOp::AddRR : is_sub ? FastOp::SubRR : FastOp::CmpRR;
    } else if (insn.ops[1].kind == x86::Operand::Kind::Imm) {
      // read_operand masks immediates to the dword op size, so both imm32
      // and sign-extended imm8 forms reduce to the stored value.
      p.imm = insn.ops[1].imm;
      p.fast = is_add ? FastOp::AddRI : is_sub ? FastOp::SubRI : FastOp::CmpRI;
    }
    return;
  }
  if (insn.op != x86::Mnemonic::MOV || insn.opsize != x86::OpSize::Dword) return;
  const x86::Operand& dst = insn.ops[0];
  const x86::Operand& src = insn.ops[1];
  if (dst.size != x86::OpSize::Dword || src.size != x86::OpSize::Dword) return;

  const auto set_mem = [&p](const x86::Mem& m) {
    p.imm = m.disp;
    p.mbase = static_cast<std::uint8_t>(m.base);
    p.midx = static_cast<std::uint8_t>(m.index);
    p.mscale = m.scale;
  };
  if (dst.kind == x86::Operand::Kind::Reg) {
    p.r1 = static_cast<std::uint8_t>(dst.reg);
    switch (src.kind) {
      case x86::Operand::Kind::Reg:
        p.fast = FastOp::MovRR;
        p.r2 = static_cast<std::uint8_t>(src.reg);
        return;
      case x86::Operand::Kind::Imm:
        p.fast = FastOp::MovRI;
        p.imm = src.imm;
        return;
      case x86::Operand::Kind::Mem:
        p.fast = FastOp::MovRM;
        set_mem(src.mem);
        return;
      default:
        return;
    }
  }
  if (dst.kind == x86::Operand::Kind::Mem) {
    set_mem(dst.mem);
    if (src.kind == x86::Operand::Kind::Reg) {
      p.fast = FastOp::MovMR;
      p.r2 = static_cast<std::uint8_t>(src.reg);
    }
    // mov [mem], imm needs both disp and imm; not worth growing the entry —
    // it stays on the generic path.
  }
}

bool Machine::exec_fast(const Predecoded& p) {
  // Mirrors exec_one for the specialised shapes: eip advances before any
  // operand access (fault_eip points past the instruction, as the generic
  // path does), MOV writes no flags, cycles are 1 plus 2 per memory operand.
  eip += p.len;
  switch (p.fast) {
    case FastOp::MovRR:
      reg[p.r1] = reg[p.r2];
      result_.cycles += 1;
      return true;
    case FastOp::MovRI:
      reg[p.r1] = static_cast<std::uint32_t>(p.imm);
      result_.cycles += 1;
      return true;
    case FastOp::MovRM: {
      std::uint32_t a = static_cast<std::uint32_t>(p.imm);
      if (p.mbase != 8) a += reg[p.mbase];
      if (p.midx != 8) a += reg[p.midx] * p.mscale;
      bool ok = true;
      const std::uint32_t v = read_u32(a, ok);
      // Cycles accrue even on a fault, exactly like exec_one's epilogue.
      result_.cycles += 3;
      if (!ok) return false;
      reg[p.r1] = v;
      return true;
    }
    case FastOp::MovMR: {
      std::uint32_t a = static_cast<std::uint32_t>(p.imm);
      if (p.mbase != 8) a += reg[p.mbase];
      if (p.midx != 8) a += reg[p.midx] * p.mscale;
      const bool ok = write_u32(a, reg[p.r2]);
      result_.cycles += 3;
      return ok;
    }
    case FastOp::PushR:
    case FastOp::PushI: {
      // Generic PUSH reads the source before the esp decrement (push esp
      // stores the pre-decrement value) and charges its 2 extra cycles even
      // when the stack write faults.
      const std::uint32_t v = p.fast == FastOp::PushR
                                  ? reg[p.r1]
                                  : static_cast<std::uint32_t>(p.imm);
      std::uint32_t& esp = gpr(x86::Reg::ESP);
      esp -= 4;
      const bool ok = write_u32(esp, v);
      result_.cycles += 3;
      return ok;
    }
    case FastOp::PopR: {
      // Generic POP bumps esp even when the read faults, but breaks out
      // *before* its extra_cycles — a faulting pop costs 1 cycle, and the
      // destination (including pop esp) is written only on success.
      std::uint32_t& esp = gpr(x86::Reg::ESP);
      bool ok = true;
      const std::uint32_t v = read_u32(esp, ok);
      esp += 4;
      if (!ok) {
        result_.cycles += 1;
        return false;
      }
      reg[p.r1] = v;  // pop esp: overrides the += 4, as in exec_one
      result_.cycles += 3;
      return true;
    }
    case FastOp::RetN: {
      // Generic RET pops into eip unconditionally (the fault, if any, is
      // raised by the stack read with eip still past the ret) and charges
      // its cycles either way.
      std::uint32_t& esp = gpr(x86::Reg::ESP);
      bool ok = true;
      const std::uint32_t v = read_u32(esp, ok);
      esp += 4;
      eip = v;
      result_.cycles += 3;
      return ok;
    }
    case FastOp::AddRR:
    case FastOp::AddRI:
      reg[p.r1] = fast_add32(eflags, reg[p.r1],
                             p.fast == FastOp::AddRR
                                 ? reg[p.r2]
                                 : static_cast<std::uint32_t>(p.imm));
      result_.cycles += 1;
      return true;
    case FastOp::SubRR:
    case FastOp::SubRI:
      reg[p.r1] = fast_sub32(eflags, reg[p.r1],
                             p.fast == FastOp::SubRR
                                 ? reg[p.r2]
                                 : static_cast<std::uint32_t>(p.imm));
      result_.cycles += 1;
      return true;
    case FastOp::CmpRR:
    case FastOp::CmpRI:
      fast_sub32(eflags, reg[p.r1],
                 p.fast == FastOp::CmpRR ? reg[p.r2]
                                         : static_cast<std::uint32_t>(p.imm));
      result_.cycles += 1;
      return true;
    case FastOp::JmpRel:
      eip += static_cast<std::uint32_t>(p.imm);
      result_.cycles += 2;
      return true;
    case FastOp::JccRel:
      // Taken branches cost the extra cycle, as in exec_one.
      if (cond_true(eflags, static_cast<x86::Cond>(p.aux))) {
        eip += static_cast<std::uint32_t>(p.imm);
        result_.cycles += 2;
      } else {
        result_.cycles += 1;
      }
      return true;
    default:
      return false;  // unreachable
  }
}

const Machine::Predecoded* Machine::predecode_lookup(Region& r, std::uint32_t at) {
  if (r.predecode_slot.empty()) return nullptr;
  const std::uint32_t slot = r.predecode_slot[at - r.base];
  if (slot == 0 || slot > predecode_pool_.size()) return nullptr;
  const Predecoded& p = predecode_pool_[slot - 1];
  // A slot can be stale after an invalidation rebuilt the pool; the eip tag
  // rejects entries that were re-used for a different address.
  if (p.eip != at) return nullptr;
  return &p;
}

const Machine::Predecoded* Machine::predecode_insert(Region& r, std::uint32_t at,
                                                     const x86::Insn& insn) {
  if (!(r.perms & img::kPermExec)) {
    // Only reachable with enforce_nx off. Writes to non-executable regions
    // do not invalidate the cache, so never cache decodes from them.
    uncached_.insn = insn;
    uncached_.eip = at;
    classify_fast(uncached_);
    return &uncached_;
  }
  if (r.predecode_slot.empty()) r.predecode_slot.assign(r.bytes.size(), 0);
  Predecoded p;
  p.insn = insn;
  p.eip = at;
  classify_fast(p);
  predecode_pool_.push_back(std::move(p));
  r.predecode_slot[at - r.base] = static_cast<std::uint32_t>(predecode_pool_.size());
  return &predecode_pool_.back();
}

bool Machine::step() {
  if (stopped_) return false;
  if (predecode_stale_) {
    predecode_pool_.clear();
    predecode_stale_ = false;
    ++predecode_invalidations_;
  }
  if (eip == kExitSentinel) {
    result_.reason = StopReason::Exited;
    result_.exit_code = static_cast<std::int32_t>(gpr(x86::Reg::EAX));
    stopped_ = true;
    return false;
  }

  Region* r = fetch_region_cache_;
  if (!r || !r->contains(eip)) {
    r = region_at(eip);
    if (!r) {
      fault("fetch fault: no mapping");
      return false;
    }
    fetch_region_cache_ = r;
  }
  if (enforce_nx && !(r->perms & img::kPermExec)) {
    fault("fetch from non-executable region " + r->name);
    return false;
  }

  const Predecoded* pre = predecode_lookup(*r, eip);
  if (!pre) {
    // Fetch through the instruction view and decode once; subsequent
    // executions of this address hit the cache until code bytes change.
    std::uint8_t window[15];
    bool ok = true;
    std::size_t avail = 0;
    for (; avail < sizeof window; ++avail) {
      window[avail] = fetch_u8(eip + static_cast<std::uint32_t>(avail), ok);
      if (!ok) break;
    }
    const auto decoded = x86::decode({window, avail});
    if (!decoded) {
      fault("invalid opcode");
      return false;
    }
    pre = predecode_insert(*r, eip, *decoded);
  }

  if (pre_insn_hook) pre_insn_hook(eip);

  const std::uint32_t insn_eip = eip;
  const std::uint64_t cycles_before = result_.cycles;
  // `pre` stays valid through exec_one: invalidations triggered by stores
  // only mark the pool stale; the drop is deferred to the next step().
  const x86::Insn* insn = &pre->insn;
  const bool ok =
      pre->fast != FastOp::None ? exec_fast(*pre) : exec_one(*insn);
#if defined(PLX_TRACE) && PLX_TRACE
  // Observe every executed instruction, retired or faulting, with the cycles
  // it accrued: summing the deltas reproduces result_.cycles exactly.
  if (retire_observer)
    retire_observer->on_retire(insn_eip, result_.cycles - cycles_before,
                               insn->is_ret());
#endif
  if (!ok) return false;
  ++result_.instructions;

  if (profile_enabled) {
    if (const int fi = func_index_at(insn_eip); fi >= 0) {
      FuncStats& st = func_stats_[static_cast<std::size_t>(fi)];
      st.cycles += result_.cycles - cycles_before;
      ++st.instructions;
      if (insn->op == x86::Mnemonic::CALL &&
          insn->ops[0].kind == x86::Operand::Kind::Rel) {
        // Attribute the call to the *target* function's entry.
        const std::uint32_t target = insn->rel_target(insn_eip);
        if (const int gi = func_index_at(target);
            gi >= 0 && funcs_[static_cast<std::size_t>(gi)].lo == target) {
          ++func_stats_[static_cast<std::size_t>(gi)].calls;
        }
      }
      profile_dirty_ = true;
    }
  }
  return !stopped_;
}

RunResult Machine::run(std::uint64_t max_instructions) {
  while (!stopped_) {
    if (result_.instructions >= max_instructions) {
      result_.reason = StopReason::BudgetExceeded;
      stopped_ = true;
      break;
    }
    step();
  }
  return result_;
}

RunResult Machine::call_function(std::uint32_t addr, const std::vector<std::uint32_t>& args,
                                 std::uint64_t max_instructions) {
  eip = addr;
  std::uint32_t& esp = gpr(x86::Reg::ESP);
  esp = img::kStackTop - 64;
  // cdecl: push args right-to-left, then the sentinel return address.
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    esp -= 4;
    write_u32(esp, *it);
  }
  esp -= 4;
  write_u32(esp, kExitSentinel);
  stopped_ = false;
  result_ = RunResult{};
  return run(max_instructions);
}

}  // namespace plx::x86

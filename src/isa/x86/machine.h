// x86-32 virtual machine (the x86 backend's vm::Machine).
//
// Executes PLX images. This is the testbed substrate for the whole
// reproduction: protected programs, their ROP verification chains, the
// attacker's patches and the baseline defenses all run here. ISA-neutral
// consumers (fuzz harness, attack toolkit, profiler) hold the vm::Machine
// base (vm/vm.h) and obtain one via vm::make_machine(); tests and tools
// that poke x86 architectural state construct this class directly.
//
// Two features exist specifically for the paper's experiments:
//
//  * Split instruction/data views ("Wurster mode"). tamper_icache() changes
//    a byte as seen by *instruction fetch* only, exactly like the kernel
//    page-table attack of Wurster et al. [36]: checksumming code reading the
//    same address through a data load still sees the pristine byte, while
//    executed code (including ROP gadgets!) sees the tampered byte.
//
//  * Deterministic cycle accounting and a per-function flat profile, standing
//    in for the paper's wall-clock measurements. Only ratios are reported.
//
// Performance: step() serves decoded instructions from a predecode cache
// (one slot per byte of each executable region) so each address is decoded
// once, not once per execution — the translation-cache idea of DBT systems.
// Any mutation of fetch-visible bytes that could overlap a cached decode
// window (D-side writes near executable regions, tamper / tamper_icache,
// overlay clears) bumps a generation and drops the cache, so self-modifying
// code, runtime patching attacks and the Wurster split-cache semantics stay
// exact; DESIGN.md §"Performance architecture" spells out the invalidation
// rules and tests/test_predecode.cpp proves them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/image.h"
#include "isa/x86/insn.h"
#include "vm/vm.h"

namespace plx::x86 {

// EFLAGS bits we model (AF is accepted but always reads back 0).
constexpr std::uint32_t kCF = 1u << 0;
constexpr std::uint32_t kPF = 1u << 2;
constexpr std::uint32_t kZF = 1u << 6;
constexpr std::uint32_t kSF = 1u << 7;
constexpr std::uint32_t kDF = 1u << 10;
constexpr std::uint32_t kOF = 1u << 11;

class Machine final : public vm::Machine {
 public:
  explicit Machine(const img::Image& image);

  using RunResult = vm::RunResult;
  using StopReason = vm::StopReason;
  using Snapshot = vm::Machine::Snapshot;

  // --- architectural state --------------------------------------------------
  std::uint32_t reg[8] = {};  // indexed by x86::Reg
  std::uint32_t eip = 0;
  std::uint32_t eflags = 0;

  std::uint32_t& gpr(x86::Reg r) { return reg[static_cast<int>(r)]; }
  std::uint32_t gpr(x86::Reg r) const { return reg[static_cast<int>(r)]; }

  // --- memory ---------------------------------------------------------------
  struct Region {
    std::string name;
    std::uint32_t base = 0;
    std::uint32_t perms = 0;
    std::vector<std::uint8_t> bytes;
    // Predecode slot per byte: index+1 into Machine::predecode_pool_, or 0.
    // Lazily sized on first fetch; only populated for executable regions.
    std::vector<std::uint32_t> predecode_slot;
    bool contains(std::uint32_t a) const { return a >= base && a - base < bytes.size(); }
  };

  // Data-view accessors (respect permissions; set fault on violation).
  bool read_mem(std::uint32_t addr, void* out, std::uint32_t n) override;
  bool write_mem(std::uint32_t addr, const void* in, std::uint32_t n) override;
  std::uint32_t read_u32(std::uint32_t addr, bool& ok);
  std::uint16_t read_u16(std::uint32_t addr, bool& ok);
  std::uint8_t read_u8(std::uint32_t addr, bool& ok);
  bool write_u32(std::uint32_t addr, std::uint32_t v);
  bool write_u16(std::uint32_t addr, std::uint16_t v);
  bool write_u8(std::uint32_t addr, std::uint8_t v);

  // Attacker interface: patch ignoring permissions.
  void tamper(std::uint32_t addr, std::uint8_t byte) override;  // both views
  void tamper(std::uint32_t addr, std::span<const std::uint8_t>) override;
  void tamper_icache(std::uint32_t addr, std::uint8_t byte) override;  // fetch view
  void tamper_icache(std::uint32_t addr, std::span<const std::uint8_t>) override;
  void clear_icache_overlay() override {
    icache_overlay_.clear();
    invalidate_predecode();
  }

  // --- snapshot / restore ---------------------------------------------------
  // vm::Machine::Snapshot semantics; regs holds the 8 GPRs in x86::Reg
  // order, pc/flags are eip/eflags.
  Snapshot snapshot() const override;
  void restore(const Snapshot& s) override;

  // Fetch-view read (what execution sees); used by tests to inspect.
  std::uint8_t fetch_u8(std::uint32_t addr, bool& ok) const override;

  Region* region_at(std::uint32_t addr);
  const Region* region_at(std::uint32_t addr) const;

  // --- execution --------------------------------------------------------
  // Runs from the image entry point until exit/fault/budget.
  RunResult run(std::uint64_t max_instructions = 100'000'000) override;

  // Calls a function at `addr` with cdecl args; returns when it returns to
  // the sentinel. Used by unit tests and the chain-slowdown benches.
  RunResult call_function(std::uint32_t addr, const std::vector<std::uint32_t>& args,
                          std::uint64_t max_instructions = 100'000'000) override;

  // Single-step; updates `result_`. Returns false when stopped.
  bool step() override;
  const RunResult& result() const override { return result_; }

  // FNV-1a digest of registers, eflags and every writable region's bytes.
  std::uint64_t state_digest() const override;

  // --- profiling --------------------------------------------------------
  const std::map<std::string, vm::FuncStats>& profile() const override;

  // Number of decoded-instruction cache invalidations (observability; tests
  // use it to assert the cache actually drops on code mutation).
  std::uint64_t predecode_invalidations() const override {
    return predecode_invalidations_;
  }

 private:
  friend struct ExecCtx;

  void fault(const std::string& what);
  void do_syscall();
  bool exec_one(const x86::Insn& insn);  // defined in exec.cpp

  // --- predecode cache ------------------------------------------------------
  // Micro-op specialisation computed once at predecode time: the hottest
  // instruction shapes (dword MOV forms are ~70% of the dynamic mix) skip
  // the generic exec_one dispatch entirely. Cycle accounting and fault
  // semantics are identical to the generic path (1 cycle, +2 per memory
  // operand, eip advanced before operand access).
  enum class FastOp : std::uint8_t {
    None,   // run through exec_one
    MovRR,  // mov r32, r32
    MovRI,  // mov r32, imm32
    MovRM,  // mov r32, [mem]
    MovMR,  // mov [mem], r32
    PushR,  // push r32
    PushI,  // push imm
    PopR,   // pop r32
    RetN,   // ret (no imm16)
    AddRR,  // add r32, r32
    AddRI,  // add r32, imm
    SubRR,  // sub r32, r32
    SubRI,  // sub r32, imm
    CmpRR,  // cmp r32, r32
    CmpRI,  // cmp r32, imm
    JmpRel, // jmp rel8/rel32
    JccRel, // jcc rel8/rel32 (aux = condition code)
  };
  struct Predecoded {
    x86::Insn insn;
    std::uint32_t eip = 0;
    // FastOp operand fields (valid when fast != None).
    std::int32_t imm = 0;  // immediate, displacement or branch offset
    FastOp fast = FastOp::None;
    std::uint8_t len = 0;
    std::uint8_t r1 = 0, r2 = 0;             // dst / src register index
    std::uint8_t mbase = 0, midx = 0, mscale = 1;  // memory operand (8 = none)
    std::uint8_t aux = 0;                    // JccRel: x86::Cond
  };
  static void classify_fast(Predecoded& p);
  // Executes a FastOp inline. Returns false on fault (the instruction does
  // not retire, as in the generic path).
  bool exec_fast(const Predecoded& p);
  // Marks the cache stale. The actual drop is deferred to the top of the
  // next step() so a pointer into the pool stays valid across the exec_one()
  // that triggered the invalidation (self-modifying stores).
  void invalidate_predecode() { predecode_stale_ = true; }
  // True if a mutation of [addr, addr+n) could change bytes inside any
  // cached 15-byte decode window (windows start inside executable regions).
  bool mutation_hits_exec(std::uint32_t addr, std::uint32_t n) const;
  const Predecoded* predecode_lookup(Region& r, std::uint32_t at);
  const Predecoded* predecode_insert(Region& r, std::uint32_t at,
                                     const x86::Insn& insn);

  std::vector<Region> regions_;
  std::unordered_map<std::uint32_t, std::uint8_t> icache_overlay_;
  RunResult result_;
  bool stopped_ = false;

  std::vector<Predecoded> predecode_pool_;
  Predecoded uncached_;  // decode target when the region is not cacheable
  bool predecode_stale_ = false;
  std::uint64_t predecode_invalidations_ = 0;
  // [lo, hi) spans of executable regions, precomputed (perms are immutable
  // after construction) so the write path can test overlap cheaply.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> exec_spans_;
  // Spatial-locality caches; regions_ is never resized after construction,
  // so the pointers are stable.
  Region* fetch_region_cache_ = nullptr;
  Region* data_region_cache_ = nullptr;

  // Sorted function table for profile attribution.
  struct FuncSpan {
    std::uint32_t lo, hi;
    std::string name;
  };
  std::vector<FuncSpan> funcs_;
  // Stats are accumulated per FuncSpan index (no string hashing on the hot
  // path); profile() materialises the by-name map on demand.
  std::vector<vm::FuncStats> func_stats_;
  std::size_t last_func_ = 0;  // index of the last span hit (+1), 0 = none
  mutable std::map<std::string, vm::FuncStats> profile_;
  mutable bool profile_dirty_ = false;
  int func_index_at(std::uint32_t addr);

  static constexpr std::uint32_t kExitSentinel = 0xffff0000;
};

}  // namespace plx::x86

#include "isa/x86/insn.h"

namespace plx::x86 {

const char* reg_name(Reg r, OpSize size) {
  static const char* const names32[] = {"eax", "ecx", "edx", "ebx",
                                        "esp", "ebp", "esi", "edi"};
  static const char* const names16[] = {"ax", "cx", "dx", "bx",
                                        "sp", "bp", "si", "di"};
  static const char* const names8[] = {"al", "cl", "dl", "bl",
                                       "ah", "ch", "dh", "bh"};
  if (r == Reg::NONE) return "<none>";
  const auto i = static_cast<std::size_t>(r);
  switch (size) {
    case OpSize::Byte:
      return names8[i];
    case OpSize::Word:
      return names16[i];
    case OpSize::Dword:
      return names32[i];
  }
  return "<bad>";
}

const char* mnemonic_name(Mnemonic m) {
  switch (m) {
    case Mnemonic::INVALID: return "(bad)";
    case Mnemonic::ADD: return "add";
    case Mnemonic::OR: return "or";
    case Mnemonic::ADC: return "adc";
    case Mnemonic::SBB: return "sbb";
    case Mnemonic::AND: return "and";
    case Mnemonic::SUB: return "sub";
    case Mnemonic::XOR: return "xor";
    case Mnemonic::CMP: return "cmp";
    case Mnemonic::TEST: return "test";
    case Mnemonic::MOV: return "mov";
    case Mnemonic::LEA: return "lea";
    case Mnemonic::XCHG: return "xchg";
    case Mnemonic::PUSH: return "push";
    case Mnemonic::POP: return "pop";
    case Mnemonic::PUSHAD: return "pushad";
    case Mnemonic::POPAD: return "popad";
    case Mnemonic::PUSHFD: return "pushfd";
    case Mnemonic::POPFD: return "popfd";
    case Mnemonic::INC: return "inc";
    case Mnemonic::DEC: return "dec";
    case Mnemonic::NOT: return "not";
    case Mnemonic::NEG: return "neg";
    case Mnemonic::MUL: return "mul";
    case Mnemonic::IMUL: return "imul";
    case Mnemonic::DIV: return "div";
    case Mnemonic::IDIV: return "idiv";
    case Mnemonic::ROL: return "rol";
    case Mnemonic::ROR: return "ror";
    case Mnemonic::SHL: return "shl";
    case Mnemonic::SHR: return "shr";
    case Mnemonic::SAR: return "sar";
    case Mnemonic::JMP: return "jmp";
    case Mnemonic::JCC: return "j";
    case Mnemonic::CALL: return "call";
    case Mnemonic::RET: return "ret";
    case Mnemonic::RETF: return "retf";
    case Mnemonic::LEAVE: return "leave";
    case Mnemonic::SETCC: return "set";
    case Mnemonic::MOVZX: return "movzx";
    case Mnemonic::MOVSX: return "movsx";
    case Mnemonic::NOP: return "nop";
    case Mnemonic::CDQ: return "cdq";
    case Mnemonic::INT3: return "int3";
    case Mnemonic::INT: return "int";
    case Mnemonic::HLT: return "hlt";
    case Mnemonic::CLC: return "clc";
    case Mnemonic::STC: return "stc";
    case Mnemonic::CMC: return "cmc";
    case Mnemonic::CLD: return "cld";
    case Mnemonic::STD: return "std";
  }
  return "(bad)";
}

const char* cond_name(Cond c) {
  static const char* const names[] = {"o", "no", "b",  "ae", "e",  "ne",
                                      "be", "a",  "s",  "ns", "p",  "np",
                                      "l",  "ge", "le", "g"};
  return names[static_cast<std::size_t>(c)];
}

Reg parent_reg(Reg r8) {
  const auto i = static_cast<std::uint8_t>(r8);
  return i < 8 ? static_cast<Reg>(i & 3) : Reg::NONE;
}

namespace {

std::uint16_t reg_bit(Reg r, OpSize size) {
  if (r == Reg::NONE) return 0;
  Reg effective = (size == OpSize::Byte) ? parent_reg(r) : r;
  return static_cast<std::uint16_t>(1u << static_cast<unsigned>(effective));
}

void add_operand_reads(const Operand& o, RegEffects& fx) {
  switch (o.kind) {
    case Operand::Kind::Reg:
      fx.reads |= reg_bit(o.reg, o.size);
      break;
    case Operand::Kind::Mem:
      fx.reads |= reg_bit(o.mem.base, OpSize::Dword);
      fx.reads |= reg_bit(o.mem.index, OpSize::Dword);
      fx.reads_mem = true;
      break;
    default:
      break;
  }
}

void add_operand_writes(const Operand& o, RegEffects& fx) {
  switch (o.kind) {
    case Operand::Kind::Reg:
      fx.writes |= reg_bit(o.reg, o.size);
      break;
    case Operand::Kind::Mem:
      // Address registers are *read* even when the operand is written.
      fx.reads |= reg_bit(o.mem.base, OpSize::Dword);
      fx.reads |= reg_bit(o.mem.index, OpSize::Dword);
      fx.writes_mem = true;
      break;
    default:
      break;
  }
}

constexpr std::uint16_t kEsp = 1u << 4;
constexpr std::uint16_t kEax = 1u << 0;
constexpr std::uint16_t kEcx = 1u << 1;
constexpr std::uint16_t kEdx = 1u << 2;
constexpr std::uint16_t kEbp = 1u << 5;
constexpr std::uint16_t kAllGpr = 0xff;

}  // namespace

RegEffects reg_effects(const Insn& insn) {
  RegEffects fx;
  switch (insn.op) {
    case Mnemonic::ADD:
    case Mnemonic::OR:
    case Mnemonic::AND:
    case Mnemonic::SUB:
    case Mnemonic::XOR:
      add_operand_reads(insn.ops[0], fx);
      add_operand_reads(insn.ops[1], fx);
      add_operand_writes(insn.ops[0], fx);
      fx.writes_flags = true;
      break;
    case Mnemonic::ADC:
    case Mnemonic::SBB:
      add_operand_reads(insn.ops[0], fx);
      add_operand_reads(insn.ops[1], fx);
      add_operand_writes(insn.ops[0], fx);
      fx.reads_flags = true;
      fx.writes_flags = true;
      break;
    case Mnemonic::CMP:
    case Mnemonic::TEST:
      add_operand_reads(insn.ops[0], fx);
      add_operand_reads(insn.ops[1], fx);
      fx.writes_flags = true;
      break;
    case Mnemonic::MOV:
      add_operand_reads(insn.ops[1], fx);
      add_operand_writes(insn.ops[0], fx);
      break;
    case Mnemonic::MOVZX:
    case Mnemonic::MOVSX:
      add_operand_reads(insn.ops[1], fx);
      add_operand_writes(insn.ops[0], fx);
      break;
    case Mnemonic::LEA:
      fx.reads |= reg_bit(insn.ops[1].mem.base, OpSize::Dword);
      fx.reads |= reg_bit(insn.ops[1].mem.index, OpSize::Dword);
      add_operand_writes(insn.ops[0], fx);
      break;
    case Mnemonic::XCHG:
      add_operand_reads(insn.ops[0], fx);
      add_operand_reads(insn.ops[1], fx);
      add_operand_writes(insn.ops[0], fx);
      add_operand_writes(insn.ops[1], fx);
      break;
    case Mnemonic::PUSH:
      add_operand_reads(insn.ops[0], fx);
      fx.reads |= kEsp;
      fx.writes |= kEsp;
      fx.writes_mem = true;
      break;
    case Mnemonic::POP:
      add_operand_writes(insn.ops[0], fx);
      fx.reads |= kEsp;
      fx.writes |= kEsp;
      fx.reads_mem = true;
      break;
    case Mnemonic::PUSHAD:
      fx.reads |= kAllGpr;
      fx.writes |= kEsp;
      fx.writes_mem = true;
      break;
    case Mnemonic::POPAD:
      fx.reads |= kEsp;
      fx.writes |= kAllGpr & ~kEsp;
      fx.writes |= kEsp;
      fx.reads_mem = true;
      break;
    case Mnemonic::PUSHFD:
      fx.reads_flags = true;
      fx.reads |= kEsp;
      fx.writes |= kEsp;
      fx.writes_mem = true;
      break;
    case Mnemonic::POPFD:
      fx.writes_flags = true;
      fx.reads |= kEsp;
      fx.writes |= kEsp;
      fx.reads_mem = true;
      break;
    case Mnemonic::INC:
    case Mnemonic::DEC:
    case Mnemonic::NOT:
    case Mnemonic::NEG:
      add_operand_reads(insn.ops[0], fx);
      add_operand_writes(insn.ops[0], fx);
      if (insn.op != Mnemonic::NOT) fx.writes_flags = true;
      break;
    case Mnemonic::MUL:
    case Mnemonic::IMUL:
      if (insn.nops <= 1) {
        add_operand_reads(insn.ops[0], fx);
        fx.reads |= kEax;
        fx.writes |= kEax | kEdx;
      } else {
        add_operand_reads(insn.ops[1], fx);
        if (insn.nops == 2) add_operand_reads(insn.ops[0], fx);
        add_operand_writes(insn.ops[0], fx);
      }
      fx.writes_flags = true;
      break;
    case Mnemonic::DIV:
    case Mnemonic::IDIV:
      add_operand_reads(insn.ops[0], fx);
      fx.reads |= kEax | kEdx;
      fx.writes |= kEax | kEdx;
      fx.writes_flags = true;
      break;
    case Mnemonic::ROL:
    case Mnemonic::ROR:
    case Mnemonic::SHL:
    case Mnemonic::SHR:
    case Mnemonic::SAR:
      add_operand_reads(insn.ops[0], fx);
      add_operand_reads(insn.ops[1], fx);
      add_operand_writes(insn.ops[0], fx);
      fx.writes_flags = true;
      break;
    case Mnemonic::JMP:
    case Mnemonic::CALL:
      add_operand_reads(insn.ops[0], fx);
      if (insn.op == Mnemonic::CALL) {
        fx.reads |= kEsp;
        fx.writes |= kEsp;
        fx.writes_mem = true;
      }
      break;
    case Mnemonic::JCC:
      fx.reads_flags = true;
      break;
    case Mnemonic::RET:
    case Mnemonic::RETF:
      fx.reads |= kEsp;
      fx.writes |= kEsp;
      fx.reads_mem = true;
      break;
    case Mnemonic::LEAVE:
      fx.reads |= kEbp;
      fx.writes |= kEsp | kEbp;
      fx.reads_mem = true;
      break;
    case Mnemonic::SETCC:
      fx.reads_flags = true;
      add_operand_writes(insn.ops[0], fx);
      break;
    case Mnemonic::CDQ:
      fx.reads |= kEax;
      fx.writes |= kEdx;
      break;
    case Mnemonic::CLC:
    case Mnemonic::STC:
    case Mnemonic::CMC:
    case Mnemonic::CLD:
    case Mnemonic::STD:
      fx.writes_flags = true;
      break;
    case Mnemonic::INT:
    case Mnemonic::INT3:
      // Syscall gate: conservatively touches everything.
      fx.reads = kAllGpr;
      fx.writes = kAllGpr;
      fx.reads_mem = fx.writes_mem = true;
      fx.writes_flags = true;
      break;
    case Mnemonic::NOP:
    case Mnemonic::HLT:
    case Mnemonic::INVALID:
      break;
  }
  (void)kEcx;
  (void)kEdx;
  return fx;
}

isa::Insn to_isa(const Insn& insn) {
  isa::Insn out;
  out.ok = insn.valid();
  if (!out.ok) return out;
  out.len = insn.len;
  if (insn.is_ret()) {
    out.flow = isa::Flow::Ret;
  } else if (insn.is_branch()) {
    out.flow = isa::Flow::Branch;
  }
  out.far_ret = insn.op == Mnemonic::RETF;
  out.is_nop = insn.op == Mnemonic::NOP;
  out.cond_branch = insn.op == Mnemonic::JCC;
  if (insn.op == Mnemonic::JCC || insn.op == Mnemonic::SETCC) {
    out.cond = static_cast<isa::CondId>(insn.cond);
  }
  out.wrap(insn);
  return out;
}

}  // namespace plx::x86

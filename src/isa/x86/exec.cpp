// Instruction execution for vm::Machine. One function per concern: operand
// access, flag computation, and the main dispatch in Machine::exec_one.
#include <algorithm>
#include <climits>
#include <cstdint>

#include "isa/x86/machine.h"

namespace plx::x86 {

using vm::RunResult;
using vm::StopReason;

namespace {

using x86::Cond;
using x86::Insn;
using x86::Mnemonic;
using x86::Operand;
using x86::OpSize;
using x86::Reg;

std::uint32_t mask_for(OpSize s) {
  switch (s) {
    case OpSize::Byte: return 0xffu;
    case OpSize::Word: return 0xffffu;
    case OpSize::Dword: return 0xffffffffu;
  }
  return 0xffffffffu;
}

int bits_for(OpSize s) {
  switch (s) {
    case OpSize::Byte: return 8;
    case OpSize::Word: return 16;
    case OpSize::Dword: return 32;
  }
  return 32;
}

std::uint32_t sign_bit(OpSize s) { return 1u << (bits_for(s) - 1); }

bool parity_even(std::uint32_t v) {
  v &= 0xff;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return (v & 1) == 0;
}

}  // namespace

// Execution context: wraps a Machine with operand access helpers for a
// single instruction.
struct ExecCtx {
  Machine& m;
  const Insn& insn;
  bool ok = true;

  std::uint32_t read_reg(Reg r, OpSize s) {
    const auto i = static_cast<unsigned>(r);
    switch (s) {
      case OpSize::Byte:
        return (i < 4) ? (m.reg[i] & 0xff) : ((m.reg[i - 4] >> 8) & 0xff);
      case OpSize::Word:
        return m.reg[i] & 0xffff;
      case OpSize::Dword:
        return m.reg[i];
    }
    return 0;
  }

  void write_reg(Reg r, OpSize s, std::uint32_t v) {
    const auto i = static_cast<unsigned>(r);
    switch (s) {
      case OpSize::Byte:
        if (i < 4) {
          m.reg[i] = (m.reg[i] & 0xffffff00u) | (v & 0xff);
        } else {
          m.reg[i - 4] = (m.reg[i - 4] & 0xffff00ffu) | ((v & 0xff) << 8);
        }
        break;
      case OpSize::Word:
        m.reg[i] = (m.reg[i] & 0xffff0000u) | (v & 0xffff);
        break;
      case OpSize::Dword:
        m.reg[i] = v;
        break;
    }
  }

  std::uint32_t effective_addr(const x86::Mem& mem) {
    std::uint32_t a = static_cast<std::uint32_t>(mem.disp);
    if (mem.base != Reg::NONE) a += m.gpr(mem.base);
    if (mem.index != Reg::NONE) a += m.gpr(mem.index) * mem.scale;
    return a;
  }

  std::uint32_t read_operand(const Operand& o) {
    switch (o.kind) {
      case Operand::Kind::Reg:
        return read_reg(o.reg, o.size);
      case Operand::Kind::Imm:
        return static_cast<std::uint32_t>(o.imm) & mask_for(o.size == OpSize::Byte && insn.opsize != OpSize::Byte
                                                                ? OpSize::Dword
                                                                : insn.opsize);
      case Operand::Kind::Mem: {
        const std::uint32_t a = effective_addr(o.mem);
        switch (o.size) {
          case OpSize::Byte: return m.read_u8(a, ok);
          case OpSize::Word: return m.read_u16(a, ok);
          case OpSize::Dword: return m.read_u32(a, ok);
        }
        return 0;
      }
      default:
        return 0;
    }
  }

  void write_operand(const Operand& o, std::uint32_t v) {
    switch (o.kind) {
      case Operand::Kind::Reg:
        write_reg(o.reg, o.size, v);
        break;
      case Operand::Kind::Mem: {
        const std::uint32_t a = effective_addr(o.mem);
        switch (o.size) {
          case OpSize::Byte: ok = m.write_u8(a, static_cast<std::uint8_t>(v)); break;
          case OpSize::Word: ok = m.write_u16(a, static_cast<std::uint16_t>(v)); break;
          case OpSize::Dword: ok = m.write_u32(a, v); break;
        }
        break;
      }
      default:
        break;
    }
  }

  // --- flag helpers ----------------------------------------------------------
  void set_flag(std::uint32_t f, bool v) {
    if (v) {
      m.eflags |= f;
    } else {
      m.eflags &= ~f;
    }
  }
  bool flag(std::uint32_t f) const { return (m.eflags & f) != 0; }

  void set_szp(std::uint32_t res, OpSize s) {
    res &= mask_for(s);
    set_flag(kZF, res == 0);
    set_flag(kSF, (res & sign_bit(s)) != 0);
    set_flag(kPF, parity_even(res));
  }

  std::uint32_t do_add(std::uint32_t a, std::uint32_t b, std::uint32_t cin, OpSize s) {
    const std::uint32_t mask = mask_for(s);
    a &= mask;
    b &= mask;
    const std::uint64_t wide = static_cast<std::uint64_t>(a) + b + cin;
    const std::uint32_t res = static_cast<std::uint32_t>(wide) & mask;
    set_flag(kCF, wide > mask);
    set_flag(kOF, ((a ^ res) & (b ^ res) & sign_bit(s)) != 0);
    set_szp(res, s);
    return res;
  }

  std::uint32_t do_sub(std::uint32_t a, std::uint32_t b, std::uint32_t bin, OpSize s) {
    const std::uint32_t mask = mask_for(s);
    a &= mask;
    b &= mask;
    const std::uint64_t rhs = static_cast<std::uint64_t>(b) + bin;
    const std::uint32_t res = static_cast<std::uint32_t>(a - b - bin) & mask;
    set_flag(kCF, static_cast<std::uint64_t>(a) < rhs);
    set_flag(kOF, ((a ^ b) & (a ^ res) & sign_bit(s)) != 0);
    set_szp(res, s);
    return res;
  }

  std::uint32_t do_logic(Mnemonic op, std::uint32_t a, std::uint32_t b, OpSize s) {
    const std::uint32_t mask = mask_for(s);
    std::uint32_t res = 0;
    switch (op) {
      case Mnemonic::AND:
      case Mnemonic::TEST: res = a & b; break;
      case Mnemonic::OR: res = a | b; break;
      case Mnemonic::XOR: res = a ^ b; break;
      default: break;
    }
    res &= mask;
    set_flag(kCF, false);
    set_flag(kOF, false);
    set_szp(res, s);
    return res;
  }

  bool cond_true(Cond c) const {
    switch (c) {
      case Cond::O: return flag(kOF);
      case Cond::NO: return !flag(kOF);
      case Cond::B: return flag(kCF);
      case Cond::AE: return !flag(kCF);
      case Cond::E: return flag(kZF);
      case Cond::NE: return !flag(kZF);
      case Cond::BE: return flag(kCF) || flag(kZF);
      case Cond::A: return !flag(kCF) && !flag(kZF);
      case Cond::S: return flag(kSF);
      case Cond::NS: return !flag(kSF);
      case Cond::P: return flag(kPF);
      case Cond::NP: return !flag(kPF);
      case Cond::L: return flag(kSF) != flag(kOF);
      case Cond::GE: return flag(kSF) == flag(kOF);
      case Cond::LE: return flag(kZF) || (flag(kSF) != flag(kOF));
      case Cond::G: return !flag(kZF) && (flag(kSF) == flag(kOF));
    }
    return false;
  }

  // --- stack helpers ----------------------------------------------------------
  void push32(std::uint32_t v) {
    std::uint32_t& esp = m.gpr(Reg::ESP);
    esp -= 4;
    ok = ok && m.write_u32(esp, v);
  }
  std::uint32_t pop32() {
    std::uint32_t& esp = m.gpr(Reg::ESP);
    bool rok = true;
    const std::uint32_t v = m.read_u32(esp, rok);
    ok = ok && rok;
    esp += 4;
    return v;
  }
};

bool Machine::exec_one(const x86::Insn& insn) {
  ExecCtx c{*this, insn};
  const OpSize s = insn.opsize;
  std::uint64_t extra_cycles = 0;

  // Advance eip first: rel targets and call return addresses are relative to
  // the *next* instruction.
  eip += insn.len;

  auto mem_touch = [&](const Operand& o) {
    if (o.kind == Operand::Kind::Mem) extra_cycles += 2;
  };
  mem_touch(insn.ops[0]);
  mem_touch(insn.ops[1]);

  switch (insn.op) {
    case Mnemonic::ADD:
    case Mnemonic::ADC:
    case Mnemonic::SUB:
    case Mnemonic::SBB:
    case Mnemonic::CMP: {
      const std::uint32_t a = c.read_operand(insn.ops[0]);
      const std::uint32_t b = c.read_operand(insn.ops[1]);
      if (!c.ok) break;
      const std::uint32_t carry = c.flag(kCF) ? 1 : 0;
      std::uint32_t res = 0;
      switch (insn.op) {
        case Mnemonic::ADD: res = c.do_add(a, b, 0, s); break;
        case Mnemonic::ADC: res = c.do_add(a, b, carry, s); break;
        case Mnemonic::SUB: res = c.do_sub(a, b, 0, s); break;
        case Mnemonic::SBB: res = c.do_sub(a, b, carry, s); break;
        case Mnemonic::CMP: res = c.do_sub(a, b, 0, s); break;
        default: break;
      }
      if (insn.op != Mnemonic::CMP) c.write_operand(insn.ops[0], res);
      break;
    }

    case Mnemonic::AND:
    case Mnemonic::OR:
    case Mnemonic::XOR:
    case Mnemonic::TEST: {
      const std::uint32_t a = c.read_operand(insn.ops[0]);
      const std::uint32_t b = c.read_operand(insn.ops[1]);
      if (!c.ok) break;
      const std::uint32_t res = c.do_logic(insn.op, a, b, s);
      if (insn.op != Mnemonic::TEST) c.write_operand(insn.ops[0], res);
      break;
    }

    case Mnemonic::MOV: {
      const std::uint32_t v = c.read_operand(insn.ops[1]);
      if (!c.ok) break;
      c.write_operand(insn.ops[0], v);
      break;
    }

    case Mnemonic::MOVZX: {
      const std::uint32_t v = c.read_operand(insn.ops[1]) & mask_for(insn.ops[1].size);
      if (!c.ok) break;
      c.write_reg(insn.ops[0].reg, OpSize::Dword, v);
      break;
    }
    case Mnemonic::MOVSX: {
      std::uint32_t v = c.read_operand(insn.ops[1]) & mask_for(insn.ops[1].size);
      if (!c.ok) break;
      if (insn.ops[1].size == OpSize::Byte) {
        v = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(v)));
      } else {
        v = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
      }
      c.write_reg(insn.ops[0].reg, OpSize::Dword, v);
      break;
    }

    case Mnemonic::LEA:
      c.write_reg(insn.ops[0].reg, OpSize::Dword, c.effective_addr(insn.ops[1].mem));
      break;

    case Mnemonic::XCHG: {
      const std::uint32_t a = c.read_operand(insn.ops[0]);
      const std::uint32_t b = c.read_operand(insn.ops[1]);
      if (!c.ok) break;
      c.write_operand(insn.ops[0], b);
      c.write_operand(insn.ops[1], a);
      break;
    }

    case Mnemonic::PUSH: {
      std::uint32_t v = c.read_operand(insn.ops[0]);
      if (insn.ops[0].kind == Operand::Kind::Imm) {
        v = static_cast<std::uint32_t>(insn.ops[0].imm);  // sign-extended
      }
      if (!c.ok) break;
      c.push32(v);
      extra_cycles += 2;
      break;
    }

    case Mnemonic::POP: {
      const std::uint32_t v = c.pop32();
      if (!c.ok) break;
      c.write_operand(insn.ops[0], v);  // pop esp: write overrides the +=4
      extra_cycles += 2;
      break;
    }

    case Mnemonic::PUSHAD: {
      const std::uint32_t saved_esp = gpr(Reg::ESP);
      c.push32(gpr(Reg::EAX));
      c.push32(gpr(Reg::ECX));
      c.push32(gpr(Reg::EDX));
      c.push32(gpr(Reg::EBX));
      c.push32(saved_esp);
      c.push32(gpr(Reg::EBP));
      c.push32(gpr(Reg::ESI));
      c.push32(gpr(Reg::EDI));
      extra_cycles += 16;
      break;
    }
    case Mnemonic::POPAD: {
      gpr(Reg::EDI) = c.pop32();
      gpr(Reg::ESI) = c.pop32();
      gpr(Reg::EBP) = c.pop32();
      (void)c.pop32();  // skip saved esp
      gpr(Reg::EBX) = c.pop32();
      gpr(Reg::EDX) = c.pop32();
      gpr(Reg::ECX) = c.pop32();
      gpr(Reg::EAX) = c.pop32();
      extra_cycles += 16;
      break;
    }

    case Mnemonic::PUSHFD:
      c.push32(eflags | 0x2);
      extra_cycles += 2;
      break;
    case Mnemonic::POPFD:
      eflags = c.pop32() & (kCF | kPF | kZF | kSF | kDF | kOF);
      extra_cycles += 2;
      break;

    case Mnemonic::INC:
    case Mnemonic::DEC: {
      const bool cf = c.flag(kCF);  // INC/DEC preserve CF
      const std::uint32_t a = c.read_operand(insn.ops[0]);
      if (!c.ok) break;
      const std::uint32_t res = (insn.op == Mnemonic::INC) ? c.do_add(a, 1, 0, s)
                                                           : c.do_sub(a, 1, 0, s);
      c.set_flag(kCF, cf);
      c.write_operand(insn.ops[0], res);
      break;
    }

    case Mnemonic::NOT: {
      const std::uint32_t a = c.read_operand(insn.ops[0]);
      if (!c.ok) break;
      c.write_operand(insn.ops[0], ~a & mask_for(s));
      break;
    }
    case Mnemonic::NEG: {
      const std::uint32_t a = c.read_operand(insn.ops[0]);
      if (!c.ok) break;
      const std::uint32_t res = c.do_sub(0, a, 0, s);
      c.set_flag(kCF, (a & mask_for(s)) != 0);
      c.write_operand(insn.ops[0], res);
      break;
    }

    case Mnemonic::MUL: {
      extra_cycles += 8;
      const std::uint32_t src = c.read_operand(insn.ops[0]);
      if (!c.ok) break;
      if (s == OpSize::Byte) {
        const std::uint32_t prod = (gpr(Reg::EAX) & 0xff) * (src & 0xff);
        c.write_reg(Reg::EAX, OpSize::Word, prod);
        const bool hi = (prod >> 8) != 0;
        c.set_flag(kCF, hi);
        c.set_flag(kOF, hi);
      } else {
        const std::uint64_t prod = static_cast<std::uint64_t>(gpr(Reg::EAX)) * src;
        gpr(Reg::EAX) = static_cast<std::uint32_t>(prod);
        gpr(Reg::EDX) = static_cast<std::uint32_t>(prod >> 32);
        const bool hi = gpr(Reg::EDX) != 0;
        c.set_flag(kCF, hi);
        c.set_flag(kOF, hi);
      }
      break;
    }

    case Mnemonic::IMUL: {
      extra_cycles += 8;
      if (insn.nops <= 1) {
        const std::uint32_t src = c.read_operand(insn.ops[0]);
        if (!c.ok) break;
        if (s == OpSize::Byte) {
          const std::int32_t prod = static_cast<std::int8_t>(gpr(Reg::EAX) & 0xff) *
                                    static_cast<std::int8_t>(src & 0xff);
          c.write_reg(Reg::EAX, OpSize::Word, static_cast<std::uint32_t>(prod));
          const bool of = prod != static_cast<std::int8_t>(prod);
          c.set_flag(kCF, of);
          c.set_flag(kOF, of);
        } else {
          const std::int64_t prod = static_cast<std::int64_t>(static_cast<std::int32_t>(gpr(Reg::EAX))) *
                                    static_cast<std::int32_t>(src);
          gpr(Reg::EAX) = static_cast<std::uint32_t>(prod);
          gpr(Reg::EDX) = static_cast<std::uint32_t>(static_cast<std::uint64_t>(prod) >> 32);
          const bool of = prod != static_cast<std::int32_t>(prod);
          c.set_flag(kCF, of);
          c.set_flag(kOF, of);
        }
      } else {
        const std::uint32_t a = (insn.nops == 2) ? c.read_operand(insn.ops[0])
                                                 : c.read_operand(insn.ops[1]);
        const std::uint32_t b = (insn.nops == 2)
                                    ? c.read_operand(insn.ops[1])
                                    : static_cast<std::uint32_t>(insn.ops[2].imm);
        if (!c.ok) break;
        const std::int64_t prod = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                                  static_cast<std::int32_t>(b);
        const auto res = static_cast<std::uint32_t>(prod);
        c.write_reg(insn.ops[0].reg, OpSize::Dword, res);
        const bool of = prod != static_cast<std::int32_t>(res);
        c.set_flag(kCF, of);
        c.set_flag(kOF, of);
        c.set_szp(res, OpSize::Dword);
      }
      break;
    }

    case Mnemonic::DIV: {
      extra_cycles += 20;
      const std::uint32_t src = c.read_operand(insn.ops[0]);
      if (!c.ok) break;
      if ((src & mask_for(s)) == 0) {
        fault("divide by zero");
        return false;
      }
      if (s == OpSize::Byte) {
        const std::uint32_t dividend = gpr(Reg::EAX) & 0xffff;
        const std::uint32_t q = dividend / (src & 0xff);
        const std::uint32_t r = dividend % (src & 0xff);
        if (q > 0xff) {
          fault("divide overflow");
          return false;
        }
        c.write_reg(Reg::EAX, OpSize::Word, (r << 8) | q);
      } else {
        const std::uint64_t dividend =
            (static_cast<std::uint64_t>(gpr(Reg::EDX)) << 32) | gpr(Reg::EAX);
        const std::uint64_t q = dividend / src;
        if (q > 0xffffffffull) {
          fault("divide overflow");
          return false;
        }
        gpr(Reg::EAX) = static_cast<std::uint32_t>(q);
        gpr(Reg::EDX) = static_cast<std::uint32_t>(dividend % src);
      }
      break;
    }

    case Mnemonic::IDIV: {
      extra_cycles += 20;
      const std::uint32_t src = c.read_operand(insn.ops[0]);
      if (!c.ok) break;
      if (s == OpSize::Byte) {
        const auto divisor = static_cast<std::int32_t>(static_cast<std::int8_t>(src & 0xff));
        if (divisor == 0) {
          fault("divide by zero");
          return false;
        }
        const auto dividend = static_cast<std::int32_t>(static_cast<std::int16_t>(gpr(Reg::EAX) & 0xffff));
        const std::int32_t q = dividend / divisor;
        const std::int32_t r = dividend % divisor;
        if (q < -128 || q > 127) {
          fault("divide overflow");
          return false;
        }
        c.write_reg(Reg::EAX, OpSize::Word,
                    ((static_cast<std::uint32_t>(r) & 0xff) << 8) |
                        (static_cast<std::uint32_t>(q) & 0xff));
      } else {
        const auto divisor = static_cast<std::int32_t>(src);
        if (divisor == 0) {
          fault("divide by zero");
          return false;
        }
        const auto dividend = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(gpr(Reg::EDX)) << 32) | gpr(Reg::EAX));
        if (dividend == INT64_MIN && divisor == -1) {
          fault("divide overflow");
          return false;
        }
        const std::int64_t q = dividend / divisor;
        const std::int64_t r = dividend % divisor;
        if (q < INT32_MIN || q > INT32_MAX) {
          fault("divide overflow");
          return false;
        }
        gpr(Reg::EAX) = static_cast<std::uint32_t>(q);
        gpr(Reg::EDX) = static_cast<std::uint32_t>(r);
      }
      break;
    }

    case Mnemonic::SHL:
    case Mnemonic::SHR:
    case Mnemonic::SAR: {
      const std::uint32_t count = c.read_operand(insn.ops[1]) & 31;
      std::uint32_t a = c.read_operand(insn.ops[0]) & mask_for(s);
      if (!c.ok) break;
      if (count == 0) {
        break;  // flags unchanged
      }
      const int bits = bits_for(s);
      std::uint32_t res = 0;
      bool cf = false;
      if (insn.op == Mnemonic::SHL) {
        if (count <= static_cast<std::uint32_t>(bits)) {
          cf = (a >> (bits - count)) & 1;
        }
        res = (count >= 32) ? 0 : (a << count);
      } else if (insn.op == Mnemonic::SHR) {
        cf = (count <= static_cast<std::uint32_t>(bits)) && ((a >> (count - 1)) & 1);
        res = (count >= static_cast<std::uint32_t>(bits)) ? 0 : (a >> count);
      } else {  // SAR
        std::int32_t sa = static_cast<std::int32_t>(a << (32 - bits)) >> (32 - bits);
        cf = (count >= static_cast<std::uint32_t>(bits))
                 ? (sa < 0)
                 : ((sa >> (count - 1)) & 1);
        sa >>= std::min<std::uint32_t>(count, 31);
        res = static_cast<std::uint32_t>(sa);
      }
      res &= mask_for(s);
      c.set_flag(kCF, cf);
      if (count == 1) {
        if (insn.op == Mnemonic::SHL) {
          c.set_flag(kOF, ((res ^ a) & sign_bit(s)) != 0);
        } else if (insn.op == Mnemonic::SHR) {
          c.set_flag(kOF, (a & sign_bit(s)) != 0);
        } else {
          c.set_flag(kOF, false);
        }
      }
      c.set_szp(res, s);
      c.write_operand(insn.ops[0], res);
      break;
    }

    case Mnemonic::ROL:
    case Mnemonic::ROR: {
      const int bits = bits_for(s);
      std::uint32_t count = (c.read_operand(insn.ops[1]) & 31) % static_cast<std::uint32_t>(bits);
      const std::uint32_t a = c.read_operand(insn.ops[0]) & mask_for(s);
      if (!c.ok) break;
      std::uint32_t res = a;
      if (count != 0) {
        if (insn.op == Mnemonic::ROL) {
          res = ((a << count) | (a >> (bits - count))) & mask_for(s);
          c.set_flag(kCF, res & 1);
        } else {
          res = ((a >> count) | (a << (bits - count))) & mask_for(s);
          c.set_flag(kCF, (res & sign_bit(s)) != 0);
        }
        c.write_operand(insn.ops[0], res);
      }
      break;
    }

    case Mnemonic::JMP: {
      extra_cycles += 1;
      if (insn.ops[0].kind == Operand::Kind::Rel) {
        eip = insn.rel_target(eip - insn.len);
      } else {
        eip = c.read_operand(insn.ops[0]);
      }
      break;
    }

    case Mnemonic::JCC:
      if (c.cond_true(insn.cond)) {
        extra_cycles += 1;
        eip = insn.rel_target(eip - insn.len);
      }
      break;

    case Mnemonic::CALL: {
      extra_cycles += 2;
      const std::uint32_t ret_addr = eip;
      std::uint32_t target = 0;
      if (insn.ops[0].kind == Operand::Kind::Rel) {
        target = insn.rel_target(eip - insn.len);
      } else {
        target = c.read_operand(insn.ops[0]);
      }
      if (!c.ok) break;
      c.push32(ret_addr);
      eip = target;
      break;
    }

    case Mnemonic::RET: {
      extra_cycles += 2;
      eip = c.pop32();
      if (insn.nops == 1) gpr(Reg::ESP) += static_cast<std::uint32_t>(insn.ops[0].imm);
      break;
    }

    case Mnemonic::RETF: {
      extra_cycles += 3;
      eip = c.pop32();
      (void)c.pop32();  // discard the code-segment slot
      if (insn.nops == 1) gpr(Reg::ESP) += static_cast<std::uint32_t>(insn.ops[0].imm);
      break;
    }

    case Mnemonic::LEAVE:
      extra_cycles += 2;
      gpr(Reg::ESP) = gpr(Reg::EBP);
      gpr(Reg::EBP) = c.pop32();
      break;

    case Mnemonic::SETCC:
      c.write_operand(insn.ops[0], c.cond_true(insn.cond) ? 1 : 0);
      break;

    case Mnemonic::CDQ:
      gpr(Reg::EDX) = (gpr(Reg::EAX) & 0x80000000u) ? 0xffffffffu : 0;
      break;

    case Mnemonic::NOP:
      break;

    case Mnemonic::INT3:
      fault("int3 breakpoint");
      return false;

    case Mnemonic::INT:
      if ((insn.ops[0].imm & 0xff) == 0x80) {
        extra_cycles += 50;
        do_syscall();
      } else {
        fault("unsupported software interrupt");
        return false;
      }
      break;

    case Mnemonic::HLT:
      fault("hlt executed");
      return false;

    case Mnemonic::CLC: c.set_flag(kCF, false); break;
    case Mnemonic::STC: c.set_flag(kCF, true); break;
    case Mnemonic::CMC: c.set_flag(kCF, !c.flag(kCF)); break;
    case Mnemonic::CLD: c.set_flag(kDF, false); break;
    case Mnemonic::STD: c.set_flag(kDF, true); break;

    case Mnemonic::INVALID:
      fault("invalid opcode");
      return false;
  }

  result_.cycles += 1 + extra_cycles;
  return c.ok && !stopped_;
}

}  // namespace plx::x86

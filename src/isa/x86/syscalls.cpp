#include "vm/syscalls.h"

#include <algorithm>

#include "isa/x86/machine.h"

namespace plx::x86 {

using vm::StopReason;
namespace sys = vm::sys;

using x86::Reg;

void Machine::do_syscall() {
  const std::uint32_t num = gpr(Reg::EAX);
  const std::uint32_t a1 = gpr(Reg::EBX);
  const std::uint32_t a2 = gpr(Reg::ECX);
  const std::uint32_t a3 = gpr(Reg::EDX);
  std::int32_t ret = sys::kEnosys;
  ++syscall_counts[num];
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  for (std::uint32_t v : {num, a1, a2, a3}) {
    for (int i = 0; i < 4; ++i) {
      syscall_digest = (syscall_digest ^ ((v >> (8 * i)) & 0xff)) * kPrime;
    }
  }

  switch (num) {
    case sys::kExit:
      result_.reason = StopReason::Exited;
      result_.exit_code = static_cast<std::int32_t>(a1);
      stopped_ = true;
      return;

    case sys::kWrite: {
      if (a1 == 1 || a1 == 2) {
        std::string chunk;
        chunk.resize(a3);
        bool ok = a3 == 0 || read_mem(a2, chunk.data(), a3);
        if (!ok) return;  // fault already recorded
        output += chunk;
        ret = static_cast<std::int32_t>(a3);
      } else {
        ret = sys::kEperm;
      }
      break;
    }

    case sys::kRead: {
      if (a1 == 0) {
        const std::size_t avail = input.size() - std::min(input_pos, input.size());
        const std::uint32_t n = std::min<std::uint32_t>(a3, static_cast<std::uint32_t>(avail));
        if (n > 0) {
          if (!write_mem(a2, input.data() + input_pos, n)) return;
          input_pos += n;
        }
        ret = static_cast<std::int32_t>(n);
      } else {
        ret = sys::kEperm;
      }
      break;
    }

    case sys::kTime:
      ret = static_cast<std::int32_t>(time_value);
      break;

    case sys::kGetpid:
      ret = 1234;
      break;

    case sys::kPtrace:
      // request 0 == PTRACE_TRACEME: succeeds unless a debugger is already
      // attached — the paper's running example (§IV-A) hinges on this.
      if (a1 == 0) {
        ret = debugger_attached ? sys::kEperm : 0;
      } else {
        ret = sys::kEperm;
      }
      break;

    case sys::kRand:
      ret = static_cast<std::int32_t>(rng.next_u32() & 0x7fffffffu);
      break;

    case sys::kSrand:
      rng = Rng(a1);
      ret = 0;
      break;

    default:
      ret = sys::kEnosys;
      break;
  }
  gpr(Reg::EAX) = static_cast<std::uint32_t>(ret);
}

}  // namespace plx::x86

// The x86-32 backend's Arch descriptor (isa/arch.h). Defined in arch.cpp;
// the registry (isa/registry.cpp) is the only intended caller — generic code
// reaches this backend through isa::find_arch("x86") / isa::default_arch().
#pragma once

#include "isa/arch.h"

namespace plx::x86 {

const isa::Arch& x86_arch();

}  // namespace plx::x86

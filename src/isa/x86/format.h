// Intel-syntax text formatting for decoded instructions.
//
// Used for diagnostics, example output (disassembly listings like the
// paper's Listing 1) and assembler error messages.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "isa/x86/insn.h"

namespace plx::x86 {

// "mov eax, 0x2a" style rendering. `addr` is the instruction's own address,
// used to print absolute targets for rel operands.
std::string format(const Insn& insn, std::uint32_t addr = 0);

// Full disassembly listing of a byte region: "addr: bytes  mnemonic".
// Undecodable bytes are printed as "(bad)" and skipped one byte at a time.
std::string disassemble(std::span<const std::uint8_t> bytes, std::uint32_t base);

}  // namespace plx::x86

// The applying side of §IV-B over x86 encodings; generic code dispatches
// here through isa::Arch::rewrite_ops(). Moved verbatim from the pre-seam
// rewrite/rewriter.cpp — behaviour (and crafted byte patterns) unchanged.
#include "isa/x86/rewrite.h"

#include <algorithm>
#include <map>

#include "isa/x86/build.h"
#include "isa/x86/decoder.h"
#include "isa/x86/rules.h"

namespace plx::x86 {

namespace {

inline plx::Diag craft_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::RewriteError, "rewrite.craft", std::move(msg));
}

using rewrite::CraftOptions;
using rewrite::CraftResult;
using rewrite::Crafted;
using rewrite::Rule;

// Does any instruction *read* flags after item `idx` before they are
// overwritten? Conservative within the fragment: an intervening branch or
// call ends the scan pessimistically (the callee may expect nothing, but a
// jcc clearly consumes).
bool flags_dead_after(const img::Fragment& frag, std::size_t idx) {
  for (std::size_t i = idx + 1; i < frag.items.size(); ++i) {
    const img::Item& item = frag.items[i];
    if (item.kind != img::Item::Kind::Insn) continue;
    const auto fx = reg_effects(item.insn);
    if (fx.reads_flags) return false;
    if (fx.writes_flags) return true;
    if (item.insn.is_branch() || item.insn.is_ret()) {
      // Fall-through unknown; calls/rets don't preserve flags in cdecl, and
      // our codegen never branches on flags set before a jump target.
      return true;
    }
  }
  return true;
}

// Confirms all crafted byte patterns still exist in .text and refreshes
// their addresses. Distinct edits can produce *identical* byte patterns, so
// presence is checked with multiplicity: a pattern crafted k times must
// occur at least k times, and the i-th member gets the i-th occurrence.
bool verify_crafted(const img::Image& image, std::vector<Crafted>& crafted) {
  const img::Section* text = image.find_section(".text");
  if (!text) return false;
  const auto& bytes = text->bytes.vec();

  std::map<std::vector<std::uint8_t>, std::vector<Crafted*>> groups;
  for (auto& c : crafted) groups[c.bytes].push_back(&c);

  for (auto& [pattern, members] : groups) {
    std::vector<std::uint32_t> hits;
    auto it = bytes.begin();
    while (hits.size() < members.size()) {
      it = std::search(it, bytes.end(), pattern.begin(), pattern.end());
      if (it == bytes.end()) break;
      hits.push_back(text->vaddr + static_cast<std::uint32_t>(it - bytes.begin()));
      ++it;  // allow overlapping further occurrences
    }
    if (hits.size() < members.size()) return false;
    for (std::size_t i = 0; i < members.size(); ++i) members[i]->addr = hits[i];
  }
  return true;
}

struct Crafter {
  img::Module mod;
  CraftOptions opts;
  std::vector<Crafted> crafted;
  img::LayoutResult laid;
  bool laid_valid = false;
  std::string error;

  bool relayout() {
    auto r = img::layout(mod);
    if (!r) {
      error = r.error();
      return false;
    }
    laid = std::move(r).take();
    laid_valid = true;
    return true;
  }

  bool eligible(const img::Fragment& frag) const {
    if (frag.section != img::SectionKind::Text) return false;
    if (frag.name.starts_with("__plx")) return false;
    if (!frag.is_func) return false;
    if (!opts.functions.empty() &&
        std::find(opts.functions.begin(), opts.functions.end(), frag.name) ==
            opts.functions.end()) {
      return false;
    }
    return true;
  }

  // Attempt: rewrite the imm32 of the item at (frag_idx, item_idx) so byte
  // `b` of the field becomes 0xc3, inserting a compensator. Returns true if
  // the edit was kept.
  bool try_immediate(std::size_t frag_idx, std::size_t item_idx, std::size_t b) {
    const img::Module widen_backup = mod;
    {
      img::Item& item0 = mod.fragments[frag_idx].items[item_idx];
      Insn probe = item0.insn;
      probe.len = static_cast<std::uint8_t>(laid.items[frag_idx][item_idx].size);
      if (!imm32_field_offset(probe)) {
        // Short imm8 encoding: widen to the imm32 form first (semantics
        // preserved, only the encoding grows).
        item0.insn.wide_imm = true;
        if (!relayout()) {
          mod = widen_backup;
          laid_valid = false;
          return false;
        }
      }
    }
    img::Fragment& frag = mod.fragments[frag_idx];
    img::Item& item = frag.items[item_idx];
    Insn insn = item.insn;
    const img::LaidOutItem loc = laid.items[frag_idx][item_idx];
    insn.len = static_cast<std::uint8_t>(loc.size);

    const auto field = imm32_field_offset(insn);
    if (!field) {
      mod = widen_backup;
      laid_valid = false;
      return false;
    }
    if (insn.ops[0].kind != Operand::Kind::Reg) return false;  // reg dst only
    const Reg dst = insn.ops[0].reg;

    // Plant on the real bytes to find the gadget we would create; bytes
    // before the planted ret inside the field are free (compensated).
    const img::Section* text = laid.image.find_section(".text");
    const std::size_t field_off = loc.addr - text->vaddr + *field;
    auto planted = plant_in_imm_field(text->bytes.span(), field_off,
                                      static_cast<int>(b), 0xc3);
    if (!planted) {
      mod = widen_backup;
      laid_valid = false;
      return false;
    }

    const std::uint32_t old_imm = static_cast<std::uint32_t>(insn.ops[1].imm);
    const std::uint32_t new_imm = static_cast<std::uint32_t>(planted->field[0]) |
                                  (planted->field[1] << 8) |
                                  (planted->field[2] << 16) |
                                  (static_cast<std::uint32_t>(planted->field[3]) << 24);
    if (new_imm == old_imm) {
      mod = widen_backup;
      laid_valid = false;
      return false;  // already a ret byte: counted as "existing"
    }

    // Free-immediate special case: mov eax, imm directly before the
    // epilogue; zero/non-zero return semantics let us skip compensation.
    bool free_imm = false;
    if (insn.op == Mnemonic::MOV && dst == Reg::EAX && old_imm != 0 &&
        item_idx + 1 < frag.items.size()) {
      const img::Item& next = frag.items[item_idx + 1];
      if (next.kind == img::Item::Kind::Insn &&
          (next.insn.op == Mnemonic::LEAVE || next.insn.op == Mnemonic::RET)) {
        free_imm = true;
      }
    }

    img::Item compensator;
    if (!free_imm) {
      if (!flags_dead_after(frag, item_idx)) {
        mod = widen_backup;
        laid_valid = false;
        return false;
      }
      Insn comp;
      switch (insn.op) {
        case Mnemonic::MOV:
          comp = ins::make2(Mnemonic::XOR, ins::r(dst),
                            ins::imm(static_cast<std::int32_t>(new_imm ^ old_imm)));
          break;
        case Mnemonic::ADD:
        case Mnemonic::SUB:
          comp = ins::make2(insn.op, ins::r(dst),
                            ins::imm(static_cast<std::int32_t>(old_imm - new_imm)));
          break;
        default:
          return false;  // adc/sbb splitting would disturb the carry chain
      }
      compensator = img::Item::make_insn(comp);
    }

    // Apply tentatively. Reverts go all the way back to the pre-widen state:
    // a kept widening would shift layout (and branch displacement bytes that
    // earlier jump-mod gadget patterns embed) without re-verification.
    mod.fragments[frag_idx].items[item_idx].insn.ops[1].imm =
        static_cast<std::int32_t>(new_imm);
    mod.fragments[frag_idx].items[item_idx].insn.wide_imm = true;
    if (!free_imm) {
      mod.fragments[frag_idx].items.insert(
          mod.fragments[frag_idx].items.begin() + static_cast<std::ptrdiff_t>(item_idx) + 1,
          compensator);
    }

    Crafted c;
    c.rule = Rule::ImmediateMod;
    c.function = frag.name;
    c.type = planted->planted.gadget.type;
    // Reconstruct the gadget's final byte pattern: original text with the
    // rewritten immediate field substituted.
    std::vector<std::uint8_t> modified = text->bytes.vec();
    for (int k = 0; k < 4; ++k) {
      modified[field_off + static_cast<std::size_t>(k)] = planted->field[static_cast<std::size_t>(k)];
    }
    c.bytes.assign(modified.begin() + static_cast<std::ptrdiff_t>(planted->planted.start),
                   modified.begin() + static_cast<std::ptrdiff_t>(planted->planted.end));
    crafted.push_back(c);

    if (!relayout() || !verify_crafted(laid.image, crafted)) {
      crafted.pop_back();
      mod = widen_backup;
      laid_valid = false;
      return false;
    }
    return true;
  }

  // Jump-offset rule: pad fragments so this rel32's low byte becomes 0xc3
  // (the paper aligns cleanup_and_exit so the jump offset encodes a ret).
  bool try_jump(std::size_t frag_idx, std::size_t item_idx) {
    const img::Item& item = mod.fragments[frag_idx].items[item_idx];
    const std::string target = item.sym;
    img::Fragment* target_frag = mod.find_fragment(target);
    if (!target_frag) return false;  // local label: same-fragment, can't pad

    // Quick feasibility probe on the current bytes.
    {
      const img::LaidOutItem loc = laid.items[frag_idx][item_idx];
      const img::Section* text = laid.image.find_section(".text");
      const std::size_t pos = loc.addr - text->vaddr + loc.size - 4;
      if (text->bytes[pos] == 0xc3) return false;  // already an existing gadget
      if (!try_plant_ret(text->bytes.span(), pos, 0xc3)) return false;
    }

    const img::Module backup = mod;
    const std::uint32_t target_addr = laid.image.find_symbol(target)->vaddr;
    const std::uint32_t branch_addr = laid.items[frag_idx][item_idx].addr;
    // Padding the target grows the displacement; when the target precedes
    // the branch, pad the source fragment instead (shrinks the displacement).
    const bool pad_target = target_addr > branch_addr;
    const std::string padded_name =
        pad_target ? target : mod.fragments[frag_idx].name;

    // Step 1: drop the padded fragment's alignment so padding lands
    // byte-exact, then recompute the displacement byte.
    mod.find_fragment(padded_name)->align = 1;
    if (!relayout()) {
      mod = backup;
      laid_valid = false;
      return false;
    }
    const img::Section* text = laid.image.find_section(".text");
    img::LaidOutItem loc = laid.items[frag_idx][item_idx];
    std::size_t pos = loc.addr - text->vaddr + loc.size - 4;
    const std::uint8_t cur_low = text->bytes[pos];
    const std::uint32_t pad =
        pad_target ? ((0xc3u - cur_low) & 0xff) : ((cur_low - 0xc3u) & 0xff);
    if (pad != 0) {
      mod.find_fragment(padded_name)->pad_before += pad;
      if (!relayout()) {
        mod = backup;
        laid_valid = false;
        return false;
      }
    }

    // Step 2: confirm the ret byte materialised and a usable gadget ends on
    // it, then record and verify against all previous edits.
    text = laid.image.find_section(".text");
    loc = laid.items[frag_idx][item_idx];
    pos = loc.addr - text->vaddr + loc.size - 4;
    auto planted = (text->bytes[pos] == 0xc3)
                       ? try_plant_ret(text->bytes.span(), pos, 0xc3)
                       : std::nullopt;
    if (!planted) {
      mod = backup;
      laid_valid = false;
      return false;
    }

    Crafted c;
    c.rule = Rule::JumpMod;
    c.function = mod.fragments[frag_idx].name;
    c.type = planted->gadget.type;
    const auto& tb = text->bytes.vec();
    c.bytes.assign(tb.begin() + static_cast<std::ptrdiff_t>(planted->start),
                   tb.begin() + static_cast<std::ptrdiff_t>(planted->end));
    crafted.push_back(c);
    if (!verify_crafted(laid.image, crafted)) {
      crafted.pop_back();
      mod = backup;
      laid_valid = false;
      return false;
    }
    return true;
  }

  // Spurious rule: insert a jumped-over utility gadget after the item.
  bool try_spurious(std::size_t frag_idx, std::size_t item_idx) {
    const img::Module backup = mod;
    img::Fragment& frag = mod.fragments[frag_idx];
    // jmp .skip ; <pop eax; ret> ; .skip:
    static int counter = 0;
    const std::string skip = ".plxskip" + std::to_string(counter++);
    img::Item jump = img::Item::make_insn(ins::jmp_rel(0));
    jump.fixup = img::Fixup::RelBranch;
    jump.sym = skip;
    img::Item g1 = img::Item::make_insn(ins::pop(Reg::EAX));
    img::Item g2 = img::Item::make_insn(ins::ret());
    img::Item land = img::Item::make_insn(ins::nop());
    land.labels.push_back(skip);
    auto at = frag.items.begin() + static_cast<std::ptrdiff_t>(item_idx) + 1;
    at = frag.items.insert(at, std::move(jump)) + 1;
    at = frag.items.insert(at, std::move(g1)) + 1;
    at = frag.items.insert(at, std::move(g2)) + 1;
    frag.items.insert(at, std::move(land));

    Crafted c;
    c.rule = Rule::Spurious;
    c.function = frag.name;
    c.type = gadget::GType::PopReg;
    c.bytes = {0x58, 0xc3};
    crafted.push_back(c);

    if (!relayout() || !verify_crafted(laid.image, crafted)) {
      crafted.pop_back();
      mod = backup;
      laid_valid = false;
      return false;
    }
    return true;
  }

  bool run() {
    if (!relayout()) return false;
    for (std::size_t f = 0; f < mod.fragments.size(); ++f) {
      if (!eligible(mod.fragments[f])) continue;
      int made = 0;
      // Item indices shift as compensators are inserted; walk by index and
      // re-check bounds every round.
      for (std::size_t i = 0; i < mod.fragments[f].items.size(); ++i) {
        if (made >= opts.max_per_function) break;
        const img::Item& item = mod.fragments[f].items[i];
        if (item.kind != img::Item::Kind::Insn) continue;
        if (!laid_valid && !relayout()) return false;

        Insn insn = item.insn;
        insn.len = static_cast<std::uint8_t>(laid.items[f][i].size);
        if (item.fixup != img::Fixup::None) insn.wide_imm = true;

        if (item.fixup == img::Fixup::None && immediate_rule_candidate(insn)) {
          for (std::size_t b = 0; b < 4; ++b) {
            if (try_immediate(f, i, b)) {
              ++made;
              ++i;  // skip the freshly inserted compensator
              break;
            }
            if (!laid_valid && !relayout()) return false;
          }
          continue;
        }
        if (item.fixup == img::Fixup::RelBranch && jump_rule_applies(insn)) {
          if (try_jump(f, i)) ++made;
          if (!laid_valid && !relayout()) return false;
          continue;
        }
      }
      // Spurious insertion is always applicable (§IV-B4); when enabled, add
      // one guarded gadget block per function regardless of other rules.
      if (opts.use_spurious && !mod.fragments[f].items.empty()) {
        try_spurious(f, 0);
      }
    }
    if (!laid_valid && !relayout()) return false;
    if (!verify_crafted(laid.image, crafted)) {
      error = "a crafted gadget pattern disappeared during later edits";
      return false;
    }
    return true;
  }
};

}  // namespace

Result<CraftResult> craft_gadgets(const img::Module& input, const CraftOptions& opts) {
  Crafter crafter;
  crafter.mod = input;
  crafter.opts = opts;
  if (!crafter.run()) {
    return craft_fail(crafter.error.empty() ? "gadget crafting failed" : crafter.error);
  }
  CraftResult out;
  out.module = std::move(crafter.mod);
  out.crafted = std::move(crafter.crafted);
  return out;
}

}  // namespace plx::x86

// Fluent Insn construction helpers.
//
// The mini-C backend, the verification-stub emitter and many tests construct
// instructions programmatically; these helpers keep those call sites
// readable: `ins::mov(Reg::EAX, 42)`, `ins::add(Reg::ESI, Reg::EAX)`,
// `ins::load(Reg::EAX, Mem{.base = Reg::EBP, .disp = -4})`.
#pragma once

#include "isa/x86/insn.h"

namespace plx::x86::ins {

inline Insn make(Mnemonic op) {
  Insn i;
  i.op = op;
  return i;
}

inline Insn make1(Mnemonic op, Operand a) {
  Insn i;
  i.op = op;
  i.ops[0] = a;
  i.nops = 1;
  if (a.kind == Operand::Kind::Reg || a.kind == Operand::Kind::Mem) i.opsize = a.size;
  return i;
}

inline Insn make2(Mnemonic op, Operand a, Operand b) {
  Insn i;
  i.op = op;
  i.ops[0] = a;
  i.ops[1] = b;
  i.nops = 2;
  if (a.kind == Operand::Kind::Reg || a.kind == Operand::Kind::Mem) i.opsize = a.size;
  return i;
}

// --- operand shorthands -----------------------------------------------------
inline Operand r(Reg reg) { return Operand::make_reg(reg); }
inline Operand r8(Reg reg) { return Operand::make_reg(reg, OpSize::Byte); }
inline Operand imm(std::int32_t v) { return Operand::make_imm(v); }
inline Operand mem(Mem m, OpSize s = OpSize::Dword) { return Operand::make_mem(m, s); }
inline Operand membd(Reg base, std::int32_t disp = 0, OpSize s = OpSize::Dword) {
  return Operand::make_mem(Mem{.base = base, .disp = disp}, s);
}
inline Operand memabs(std::uint32_t addr, OpSize s = OpSize::Dword) {
  return Operand::make_mem(Mem{.disp = static_cast<std::int32_t>(addr)}, s);
}

// --- common instructions ----------------------------------------------------
inline Insn mov(Reg dst, std::int32_t v) { return make2(Mnemonic::MOV, r(dst), imm(v)); }
inline Insn mov(Reg dst, Reg src) { return make2(Mnemonic::MOV, r(dst), r(src)); }
inline Insn mov(Operand dst, Operand src) { return make2(Mnemonic::MOV, dst, src); }
inline Insn add(Reg dst, Reg src) { return make2(Mnemonic::ADD, r(dst), r(src)); }
inline Insn add(Reg dst, std::int32_t v) { return make2(Mnemonic::ADD, r(dst), imm(v)); }
inline Insn sub(Reg dst, Reg src) { return make2(Mnemonic::SUB, r(dst), r(src)); }
inline Insn sub(Reg dst, std::int32_t v) { return make2(Mnemonic::SUB, r(dst), imm(v)); }
inline Insn xor_(Reg dst, Reg src) { return make2(Mnemonic::XOR, r(dst), r(src)); }
inline Insn and_(Reg dst, Reg src) { return make2(Mnemonic::AND, r(dst), r(src)); }
inline Insn or_(Reg dst, Reg src) { return make2(Mnemonic::OR, r(dst), r(src)); }
inline Insn cmp(Reg a, Reg b) { return make2(Mnemonic::CMP, r(a), r(b)); }
inline Insn cmp(Reg a, std::int32_t v) { return make2(Mnemonic::CMP, r(a), imm(v)); }
inline Insn test(Reg a, Reg b) { return make2(Mnemonic::TEST, r(a), r(b)); }
inline Insn push(Reg reg) { return make1(Mnemonic::PUSH, r(reg)); }
inline Insn push(std::int32_t v) { return make1(Mnemonic::PUSH, imm(v)); }
inline Insn pop(Reg reg) { return make1(Mnemonic::POP, r(reg)); }
inline Insn inc(Reg reg) { return make1(Mnemonic::INC, r(reg)); }
inline Insn dec(Reg reg) { return make1(Mnemonic::DEC, r(reg)); }
inline Insn neg(Reg reg) { return make1(Mnemonic::NEG, r(reg)); }
inline Insn not_(Reg reg) { return make1(Mnemonic::NOT, r(reg)); }
inline Insn load(Reg dst, Mem src, OpSize s = OpSize::Dword) {
  return make2(Mnemonic::MOV, Operand::make_reg(dst, s), Operand::make_mem(src, s));
}
inline Insn store(Mem dst, Reg src, OpSize s = OpSize::Dword) {
  return make2(Mnemonic::MOV, Operand::make_mem(dst, s), Operand::make_reg(src, s));
}
inline Insn lea(Reg dst, Mem src) { return make2(Mnemonic::LEA, r(dst), Operand::make_mem(src)); }
inline Insn ret() { return make(Mnemonic::RET); }
inline Insn retf() { return make(Mnemonic::RETF); }
inline Insn leave() { return make(Mnemonic::LEAVE); }
inline Insn nop() { return make(Mnemonic::NOP); }
inline Insn pushad() { return make(Mnemonic::PUSHAD); }
inline Insn popad() { return make(Mnemonic::POPAD); }
inline Insn pushfd() { return make(Mnemonic::PUSHFD); }
inline Insn popfd() { return make(Mnemonic::POPFD); }
inline Insn cdq() { return make(Mnemonic::CDQ); }
inline Insn int_(std::uint8_t vector) {
  return make1(Mnemonic::INT, Operand::make_imm(vector, OpSize::Byte));
}
inline Insn hlt() { return make(Mnemonic::HLT); }

inline Insn jmp_rel(std::int32_t rel, bool wide = true) {
  Insn i = make1(Mnemonic::JMP, Operand::make_rel(rel));
  i.wide_imm = wide;
  return i;
}
inline Insn jcc_rel(Cond c, std::int32_t rel, bool wide = true) {
  Insn i = make1(Mnemonic::JCC, Operand::make_rel(rel));
  i.cond = c;
  i.wide_imm = wide;
  return i;
}
inline Insn call_rel(std::int32_t rel) {
  Insn i = make1(Mnemonic::CALL, Operand::make_rel(rel));
  i.wide_imm = true;
  return i;
}
inline Insn setcc(Cond c, Reg dst8) {
  Insn i = make1(Mnemonic::SETCC, r8(dst8));
  i.cond = c;
  return i;
}
inline Insn movzx8(Reg dst, Reg src8) {
  return make2(Mnemonic::MOVZX, r(dst), r8(src8));
}
inline Insn shl(Reg dst, std::int32_t n) {
  return make2(Mnemonic::SHL, r(dst), Operand::make_imm(n, OpSize::Byte));
}
inline Insn shr(Reg dst, std::int32_t n) {
  return make2(Mnemonic::SHR, r(dst), Operand::make_imm(n, OpSize::Byte));
}
inline Insn sar(Reg dst, std::int32_t n) {
  return make2(Mnemonic::SAR, r(dst), Operand::make_imm(n, OpSize::Byte));
}
inline Insn shl_cl(Reg dst) { return make2(Mnemonic::SHL, r(dst), r8(Reg::ECX)); }
inline Insn shr_cl(Reg dst) { return make2(Mnemonic::SHR, r(dst), r8(Reg::ECX)); }
inline Insn sar_cl(Reg dst) { return make2(Mnemonic::SAR, r(dst), r8(Reg::ECX)); }
inline Insn imul2(Reg dst, Reg src) { return make2(Mnemonic::IMUL, r(dst), r(src)); }

}  // namespace plx::x86::ins

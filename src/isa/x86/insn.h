// x86-32 instruction model.
//
// Parallax reasons about real x86 encodings: gadget discovery depends on how
// byte sequences decode at unaligned offsets, and the rewriting rules depend
// on where immediates and displacements sit inside an encoding. This header
// defines the decoded representation shared by the decoder, encoder, VM,
// gadget classifier and rewriter.
//
// Scope: 32-bit protected mode, flat memory, no prefixes (operand-size,
// segment, LOCK and REP prefixes decode as invalid). This keeps decode and
// execution exactly consistent; DESIGN.md documents the restriction.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/insn.h"

namespace plx::x86 {

// General-purpose registers in x86 encoding order. For byte-sized operands
// the same indices mean AL,CL,DL,BL,AH,CH,DH,BH.
enum class Reg : std::uint8_t {
  EAX = 0,
  ECX = 1,
  EDX = 2,
  EBX = 3,
  ESP = 4,
  EBP = 5,
  ESI = 6,
  EDI = 7,
  NONE = 8,
};

constexpr int kNumRegs = 8;

// Reg <-> isa::RegId. The generic layers carry registers as isa::RegId with
// kNoReg as the wildcard/none sentinel; the x86 backend maps Reg::NONE onto
// it (and back) so wildcard comparisons agree across the seam.
constexpr isa::RegId regid(Reg r) {
  return r == Reg::NONE ? isa::kNoReg : static_cast<isa::RegId>(r);
}
constexpr Reg to_reg(isa::RegId r) {
  return r == isa::kNoReg ? Reg::NONE : static_cast<Reg>(r);
}

// Cond -> isa::CondId (the tttn value itself; forward declared here so call
// sites that name x86 conditions can hand them to generic interfaces).
enum class Cond : std::uint8_t;
constexpr isa::CondId condid(Cond c) { return static_cast<isa::CondId>(c); }

enum class OpSize : std::uint8_t { Byte, Word, Dword };

// Condition codes in x86 tttn encoding order (Jcc 0x70+cc, SETcc 0x0f90+cc).
enum class Cond : std::uint8_t {
  O = 0x0,
  NO = 0x1,
  B = 0x2,
  AE = 0x3,
  E = 0x4,
  NE = 0x5,
  BE = 0x6,
  A = 0x7,
  S = 0x8,
  NS = 0x9,
  P = 0xa,
  NP = 0xb,
  L = 0xc,
  GE = 0xd,
  LE = 0xe,
  G = 0xf,
};

enum class Mnemonic : std::uint8_t {
  INVALID,
  ADD, OR, ADC, SBB, AND, SUB, XOR, CMP,
  TEST, MOV, LEA, XCHG,
  PUSH, POP, PUSHAD, POPAD, PUSHFD, POPFD,
  INC, DEC, NOT, NEG, MUL, IMUL, DIV, IDIV,
  ROL, ROR, SHL, SHR, SAR,
  JMP, JCC, CALL, RET, RETF, LEAVE,
  SETCC, MOVZX, MOVSX,
  NOP, CDQ, INT3, INT, HLT,
  CLC, STC, CMC, CLD, STD,
};

// Memory operand: [base + index*scale + disp].
struct Mem {
  Reg base = Reg::NONE;
  Reg index = Reg::NONE;
  std::uint8_t scale = 1;  // 1, 2, 4 or 8
  std::int32_t disp = 0;

  bool operator==(const Mem&) const = default;
};

struct Operand {
  enum class Kind : std::uint8_t { None, Reg, Imm, Mem, Rel };

  Kind kind = Kind::None;
  OpSize size = OpSize::Dword;  // size of the data this operand refers to
  Reg reg = Reg::NONE;          // Kind::Reg
  std::int32_t imm = 0;         // Kind::Imm (sign-extended to 32 bits)
  Mem mem;                      // Kind::Mem
  std::int32_t rel = 0;         // Kind::Rel: displacement relative to next insn

  bool operator==(const Operand&) const = default;

  static Operand none() { return {}; }
  static Operand make_reg(Reg r, OpSize s = OpSize::Dword) {
    Operand o;
    o.kind = Kind::Reg;
    o.reg = r;
    o.size = s;
    return o;
  }
  static Operand make_imm(std::int32_t v, OpSize s = OpSize::Dword) {
    Operand o;
    o.kind = Kind::Imm;
    o.imm = v;
    o.size = s;
    return o;
  }
  static Operand make_mem(Mem m, OpSize s = OpSize::Dword) {
    Operand o;
    o.kind = Kind::Mem;
    o.mem = m;
    o.size = s;
    return o;
  }
  static Operand make_rel(std::int32_t r) {
    Operand o;
    o.kind = Kind::Rel;
    o.rel = r;
    return o;
  }
};

struct Insn {
  Mnemonic op = Mnemonic::INVALID;
  Cond cond = Cond::O;                // valid for JCC / SETCC
  std::array<Operand, 3> ops{};       // up to 3 (IMUL r, r/m, imm)
  std::uint8_t nops = 0;
  std::uint8_t len = 0;               // encoded length in bytes
  OpSize opsize = OpSize::Dword;      // operation width
  bool wide_imm = false;              // encoder hint: force imm32/rel32 form

  bool valid() const { return op != Mnemonic::INVALID; }

  // Branch / call target given this instruction's address. Only meaningful
  // when ops[0] is Kind::Rel and len is set.
  std::uint32_t rel_target(std::uint32_t addr) const {
    return addr + len + static_cast<std::uint32_t>(ops[0].rel);
  }

  bool is_ret() const { return op == Mnemonic::RET || op == Mnemonic::RETF; }
  bool is_branch() const {
    return op == Mnemonic::JMP || op == Mnemonic::JCC || op == Mnemonic::CALL;
  }
};

// Lifts a concrete decode into the generic isa::Insn the scanner and other
// generic layers carry: generic facts summarised, the full decode wrapped
// into the opaque payload for this backend to read back.
isa::Insn to_isa(const Insn& insn);

// --- naming helpers (implemented in insn.cpp) -------------------------------
const char* reg_name(Reg r, OpSize size = OpSize::Dword);
const char* mnemonic_name(Mnemonic m);
const char* cond_name(Cond c);

// Registers read / written by an instruction, as bitmasks over Reg indices
// (bit i set = register i involved). 8-bit registers map onto their parent
// 32-bit register (AH -> EAX etc). ESP adjustments from push/pop/ret are
// included. Used for gadget transparency analysis.
struct RegEffects {
  std::uint16_t reads = 0;
  std::uint16_t writes = 0;
  bool reads_mem = false;
  bool writes_mem = false;
  bool writes_flags = false;
  bool reads_flags = false;
};

RegEffects reg_effects(const Insn& insn);

// Parent 32-bit register of an 8-bit register index (AL..BH -> EAX..EBX).
Reg parent_reg(Reg r8);

}  // namespace plx::x86

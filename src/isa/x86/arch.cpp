// The x86-32 backend behind the ISA seam: the Arch descriptor plus every
// capability implementation, adapting the generic interfaces onto the
// concrete decoder / classifier / rewriter / patch encodings / VM that used
// to be reached directly.
#include "isa/x86/arch.h"

#include <memory>

#include "image/image.h"
#include "isa/classifier.h"
#include "isa/patch_ops.h"
#include "isa/rewrite_ops.h"
#include "isa/x86/build.h"
#include "isa/x86/classify.h"
#include "isa/x86/decoder.h"
#include "isa/x86/insn.h"
#include "isa/x86/machine.h"
#include "isa/x86/rewrite.h"

namespace plx::x86 {

namespace {

class X86Decoder final : public isa::Decoder {
 public:
  isa::Insn decode(std::span<const std::uint8_t> bytes) const override {
    const auto insn = x86::decode(bytes);
    if (!insn) return {};
    return to_isa(*insn);
  }

  // Semantic equality ignoring encoding hints (wide_imm, len): same
  // mnemonic, condition, width and operand list. Used by the adaptive
  // attacker's gadget-preserving patch generator to require a
  // semantics-changing byte.
  bool same_semantics(const isa::Insn& a, const isa::Insn& b) const override {
    const Insn ia = a.unwrap<Insn>();
    const Insn ib = b.unwrap<Insn>();
    if (ia.op != ib.op || ia.cond != ib.cond || ia.opsize != ib.opsize ||
        ia.nops != ib.nops) {
      return false;
    }
    for (int i = 0; i < ia.nops; ++i) {
      if (!(ia.ops[static_cast<std::size_t>(i)] ==
            ib.ops[static_cast<std::size_t>(i)])) {
        return false;
      }
    }
    return true;
  }
};

class X86Classifier final : public isa::GadgetClassifier {
 public:
  void classify(std::span<const isa::Insn> insns,
                gadget::Gadget& out) const override {
    // Unwrap the scanner's decodes back into the concrete representation the
    // lattice analysis works on; no re-decode.
    std::vector<Insn> concrete;
    concrete.reserve(insns.size());
    for (const isa::Insn& i : insns) concrete.push_back(i.unwrap<Insn>());
    x86::classify(concrete, out);
  }
};

class X86ChainABI final : public isa::ChainABI {
 public:
  X86ChainABI() {
    acc = regid(Reg::EAX);
    aux = regid(Reg::EDX);
    addr = regid(Reg::ECX);
    sp = regid(Reg::ESP);
    cond_eq = condid(Cond::E);
    cond_ne = condid(Cond::NE);
    cond_lt = condid(Cond::L);
    cond_le = condid(Cond::LE);
    cond_gt = condid(Cond::G);
    cond_ge = condid(Cond::GE);
  }

  const char* reg_name(isa::RegId r) const override {
    return r == isa::kNoReg ? "?" : x86::reg_name(to_reg(r));
  }
  const char* cond_name(isa::CondId c) const override {
    return c == isa::kNoCond ? "?" : x86::cond_name(static_cast<Cond>(c));
  }
};

class X86RewriteOps final : public isa::RewriteOps {
 public:
  Result<rewrite::CraftResult> craft_gadgets(
      const img::Module& input, const rewrite::CraftOptions& opts) const override {
    return x86::craft_gadgets(input, opts);
  }
  rewrite::CoverageReport analyze_protectability(
      const img::Module& mod, const img::LayoutResult& laid) const override {
    return x86::analyze_protectability(mod, laid);
  }
};

class X86BranchPatchOps final : public isa::BranchPatchOps {
 public:
  std::optional<std::uint32_t> find_cond_branch(const img::Image& image,
                                                const std::string& function,
                                                isa::CondId cc,
                                                int nth) const override {
    const img::Symbol* sym = image.find_symbol(function);
    if (!sym) return std::nullopt;
    const auto bytes = image.read(sym->vaddr, sym->size);
    std::size_t off = 0;
    int seen = 0;
    while (off < bytes.size()) {
      const auto insn = x86::decode(std::span(bytes).subspan(off));
      if (!insn) break;
      if (insn->op == Mnemonic::JCC && condid(insn->cond) == cc) {
        if (seen == nth) return sym->vaddr + static_cast<std::uint32_t>(off);
        ++seen;
      }
      off += insn->len;
    }
    return std::nullopt;
  }

  bool make_unconditional(img::Image& image, std::uint32_t addr) const override {
    const auto head = image.read(addr, 2);
    if (head.size() < 2) return false;
    if (head[0] == 0x0f && head[1] >= 0x80 && head[1] <= 0x8f) {
      // 0f 8x rel32 (6 bytes) -> 90 e9 rel32: same end address, same target.
      const std::uint8_t repl[2] = {0x90, 0xe9};
      return poke(image, addr, repl);
    }
    if (head[0] >= 0x70 && head[0] <= 0x7f) {
      // 7x rel8 -> eb rel8.
      const std::uint8_t repl[1] = {0xeb};
      return poke(image, addr, repl);
    }
    return false;
  }

  bool neutralize(img::Image& image, std::uint32_t addr) const override {
    const auto head = image.read(addr, 2);
    if (head.size() < 2) return false;
    if (head[0] == 0x0f && head[1] >= 0x80 && head[1] <= 0x8f) {
      return nop(image, addr, 6);
    }
    if (head[0] >= 0x70 && head[0] <= 0x7f) {
      return nop(image, addr, 2);
    }
    return false;
  }

 private:
  static bool poke(img::Image& image, std::uint32_t addr,
                   std::span<const std::uint8_t> bytes) {
    for (auto& sec : image.sections) {
      if (!sec.contains(addr)) continue;
      if (addr - sec.vaddr + bytes.size() > sec.bytes.size()) return false;
      std::copy(bytes.begin(), bytes.end(),
                sec.bytes.data() + (addr - sec.vaddr));
      return true;
    }
    return false;
  }
  static bool nop(img::Image& image, std::uint32_t addr, std::uint32_t len) {
    const std::vector<std::uint8_t> nops(len, 0x90);
    return poke(image, addr, nops);
  }
};

constexpr std::uint8_t kRetOpcodes[] = {0xc3, 0xcb};

class X86Arch final : public isa::Arch {
 public:
  const char* name() const override { return "x86"; }
  std::uint32_t pointer_bytes() const override { return 4; }
  std::uint32_t insn_align() const override { return 1; }
  std::uint32_t max_insn_len() const override { return 15; }
  std::span<const std::uint8_t> ret_opcodes() const override {
    return kRetOpcodes;
  }
  std::uint8_t ret_opcode() const override { return 0xc3; }
  std::uint8_t nop_byte() const override { return 0x90; }
  std::uint32_t reg_count() const override { return kNumRegs; }

  const isa::Decoder& decoder() const override { return decoder_; }
  const isa::GadgetClassifier& classifier() const override { return classifier_; }
  const isa::ChainABI* chain_abi() const override { return &abi_; }
  const isa::RewriteOps* rewrite_ops() const override { return &rewrite_; }
  const isa::BranchPatchOps* branch_patch_ops() const override {
    return &patch_;
  }

  std::unique_ptr<vm::Machine> make_machine(const img::Image& image) const override {
    return std::make_unique<Machine>(image);
  }

  // The fallback utility gadget set of §III: every gadget type the ROP
  // compiler may require, as real return-terminated x86 sequences.
  img::Fragment utility_gadget_fragment(const std::string& name) const override {
    using namespace x86::ins;
    img::Fragment frag;
    frag.name = name;
    frag.section = img::SectionKind::Text;
    frag.is_func = true;  // gives it a sized symbol for diagnostics
    frag.align = 16;

    auto gadget = [&frag](std::initializer_list<x86::Insn> insns) {
      for (const auto& i : insns) frag.items.push_back(img::Item::make_insn(i));
      frag.items.push_back(img::Item::make_insn(ret()));
    };

    // Value loads (ebp included: chains park it for incidental [ebp+d]
    // gadgets).
    for (Reg r : {Reg::EAX, Reg::ECX, Reg::EDX, Reg::EBX, Reg::EBP, Reg::ESI,
                  Reg::EDI}) {
      gadget({pop(r)});
    }
    // Register moves used by the compiler's canonical sequences.
    gadget({mov(Reg::EAX, Reg::EDX)});
    gadget({mov(Reg::EDX, Reg::EAX)});
    gadget({mov(Reg::ECX, Reg::EAX)});
    gadget({mov(Reg::ECX, Reg::EDX)});
    gadget({mov(Reg::EAX, Reg::ECX)});
    // Loads/stores through ecx.
    gadget({load(Reg::EAX, Mem{.base = Reg::ECX})});
    gadget({load(Reg::EDX, Mem{.base = Reg::ECX})});
    gadget({store(Mem{.base = Reg::ECX}, Reg::EAX)});
    // ALU on eax, edx.
    gadget({add(Reg::EAX, Reg::EDX)});
    gadget({sub(Reg::EAX, Reg::EDX)});
    gadget({xor_(Reg::EAX, Reg::EDX)});
    gadget({and_(Reg::EAX, Reg::EDX)});
    gadget({or_(Reg::EAX, Reg::EDX)});
    gadget({neg(Reg::EAX)});
    gadget({not_(Reg::EAX)});
    // Shifts by cl.
    gadget({shl_cl(Reg::EAX)});
    gadget({shr_cl(Reg::EAX)});
    gadget({sar_cl(Reg::EAX)});
    // Comparison + materialisation.
    gadget({cmp(Reg::EAX, Reg::EDX)});
    gadget({test(Reg::EAX, Reg::EAX)});
    for (int cc = 0; cc < 16; ++cc) {
      gadget({setcc(static_cast<Cond>(cc), Reg::EAX)});
    }
    gadget({movzx8(Reg::EAX, Reg::EAX)});
    // Chain pivots: in-chain branch and epilogue.
    gadget({make2(Mnemonic::ADD, r(Reg::ESP), r(Reg::EAX))});
    gadget({make1(Mnemonic::POP, r(Reg::ESP))});
    return frag;
  }

 private:
  X86Decoder decoder_;
  X86Classifier classifier_;
  X86ChainABI abi_;
  X86RewriteOps rewrite_;
  X86BranchPatchOps patch_;
};

}  // namespace

const isa::Arch& x86_arch() {
  static const X86Arch arch;
  return arch;
}

}  // namespace plx::x86

// Figure 6 over x86 encodings; dispatched through isa::Arch::rewrite_ops().
// The rule probes are moved verbatim from the pre-seam
// rewrite/protectability.cpp — coverage numbers unchanged.
#include "isa/x86/rewrite.h"

#include <algorithm>

#include "gadget/scanner.h"
#include "isa/x86/encoder.h"
#include "isa/x86/rules.h"

namespace plx::x86 {

using rewrite::CoverageReport;
using rewrite::Rule;

CoverageReport analyze_protectability(const img::Module& mod,
                                      const img::LayoutResult& laid) {
  CoverageReport report;
  const img::Section* text = laid.image.find_section(".text");
  if (!text) return report;
  rewrite::init_coverage_report(mod, laid, report);
  const std::size_t tsize = text->bytes.size();

  auto mark = [&](Rule rule, std::uint32_t lo, std::uint32_t hi) {
    auto& bits = report.covered[rule];
    for (std::uint32_t a = lo; a < hi && a < tsize; ++a) {
      bits[a] = true;
      report.any[a] = true;
    }
  };

  // --- existing gadgets (near and far) ---------------------------------
  for (const auto& g : gadget::scan_bytes(text->bytes.span(), text->vaddr)) {
    const Rule rule = g.insns.back().far_ret ? Rule::ExistingFar
                                             : Rule::ExistingNear;
    mark(rule, g.addr - text->vaddr, g.end() - text->vaddr);
  }

  // --- immediate and jump rules (per instruction item) ---------------------
  for (std::size_t f = 0; f < mod.fragments.size(); ++f) {
    const img::Fragment& frag = mod.fragments[f];
    if (frag.section != img::SectionKind::Text) continue;
    if (frag.name.starts_with("__plx")) continue;
    for (std::size_t i = 0; i < frag.items.size(); ++i) {
      const img::Item& item = frag.items[i];
      if (item.kind != img::Item::Kind::Insn) continue;
      const img::LaidOutItem& loc = laid.items[f][i];
      Insn insn = item.insn;
      insn.len = static_cast<std::uint8_t>(loc.size);
      if (item.fixup != img::Fixup::None) insn.wide_imm = true;

      if (immediate_rule_candidate(insn) && item.fixup == img::Fixup::None) {
        // Work on the instruction's imm32 (wide) encoding; short imm8 forms
        // are widened first (a semantics-preserving re-encoding). Build a
        // context buffer of [preceding text bytes][widened encoding].
        const std::uint32_t insn_off = loc.addr - text->vaddr;
        Insn wide = insn;
        wide.wide_imm = true;
        Buffer enc;
        if (!encode(wide, enc).ok() || enc.size() < 5) continue;
        const std::size_t prefix = std::min<std::size_t>(insn_off, 16);
        std::vector<std::uint8_t> ctx(text->bytes.vec().begin() + (insn_off - prefix),
                                      text->bytes.vec().begin() + insn_off);
        ctx.insert(ctx.end(), enc.vec().begin(), enc.vec().end());
        const std::size_t field = ctx.size() - 4;

        for (int b = 0; b < 4; ++b) {
          for (std::uint8_t opcode : {std::uint8_t{0xc3}, std::uint8_t{0xcb}}) {
            auto planted = plant_in_imm_field(ctx, field, b, opcode);
            if (!planted) continue;
            // Map the span back onto the original layout: context bytes map
            // 1:1 onto the bytes before the instruction; the widened body
            // maps onto the original instruction's bytes (clipped).
            const std::size_t s = planted->planted.start;
            const std::uint32_t lo =
                (s < prefix) ? insn_off - static_cast<std::uint32_t>(prefix - s)
                             : insn_off;
            mark(Rule::ImmediateMod, lo, insn_off + loc.size);
          }
        }
      }

      if (jump_rule_applies(insn) && item.fixup == img::Fixup::RelBranch) {
        // Only the low displacement byte is steerable with small padding.
        const std::uint32_t insn_off = loc.addr - text->vaddr;
        const std::size_t pos = insn_off + loc.size - 4;
        for (std::uint8_t opcode : {std::uint8_t{0xc3}, std::uint8_t{0xcb}}) {
          if (auto planted = try_plant_ret(text->bytes.span(), pos, opcode)) {
            mark(Rule::JumpMod, static_cast<std::uint32_t>(planted->start),
                 static_cast<std::uint32_t>(planted->end));
          }
        }
      }

      // §IV-B3 also covers addresses: an absolute data reference's low byte
      // is steerable by aligning the global it points to ("strategically
      // aligning functions and global variables"). Counted under the same
      // rearranged-code-and-data rule as jump offsets.
      if ((item.fixup == img::Fixup::AbsImm || item.fixup == img::Fixup::AbsDisp) &&
          loc.size >= 5) {
        const std::uint32_t insn_off = loc.addr - text->vaddr;
        const std::size_t pos = insn_off + loc.size - 4;  // low address byte
        for (std::uint8_t opcode : {std::uint8_t{0xc3}, std::uint8_t{0xcb}}) {
          if (auto planted = try_plant_ret(text->bytes.span(), pos, opcode)) {
            mark(Rule::JumpMod, static_cast<std::uint32_t>(planted->start),
                 static_cast<std::uint32_t>(planted->end));
          }
        }
      }
    }
  }

  return report;
}

}  // namespace plx::x86

// x86 gadget classifier: the semantic lattice of DESIGN.md §"Gadget
// classification", applied to one decoded return-terminated sequence.
// Generic code reaches this through isa::Arch::classifier(); the free
// function is the x86-typed core, exposed for backend-level tests.
#pragma once

#include <span>

#include "gadget/gadget.h"
#include "isa/x86/insn.h"

namespace plx::x86 {

// Classifies `insns` (body + terminating ret) into `out`, filling type,
// r1/r2/cond (as isa::RegId / isa::CondId), clobbers, pop accounting,
// scratch-park requirements and flag-window safety.
void classify(std::span<const Insn> insns, gadget::Gadget& out);

}  // namespace plx::x86

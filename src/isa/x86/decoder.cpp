#include "isa/x86/decoder.h"

namespace plx::x86 {

namespace {

// Cursor over the input; all reads check bounds and flip `ok` on overrun.
struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t off = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (off >= bytes.size()) {
      ok = false;
      return 0;
    }
    return bytes[off++];
  }
  std::uint16_t u16() {
    std::uint16_t lo = u8();
    std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i8sx() { return static_cast<std::int8_t>(u8()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
};

// Decodes a ModRM byte (and SIB/displacement) into an Operand. `size` is the
// data size of the r/m operand. Returns the `reg` field via out-param.
std::optional<Operand> decode_modrm(Cursor& cur, OpSize size, std::uint8_t& reg_field) {
  const std::uint8_t modrm = cur.u8();
  if (!cur.ok) return std::nullopt;
  const std::uint8_t mod = modrm >> 6;
  reg_field = (modrm >> 3) & 7;
  const std::uint8_t rm = modrm & 7;

  if (mod == 3) {
    return Operand::make_reg(static_cast<Reg>(rm), size);
  }

  Mem mem;
  if (rm == 4) {
    // SIB byte follows.
    const std::uint8_t sib = cur.u8();
    if (!cur.ok) return std::nullopt;
    const std::uint8_t ss = sib >> 6;
    const std::uint8_t index = (sib >> 3) & 7;
    const std::uint8_t base = sib & 7;
    if (index != 4) {  // index==ESP means "no index"
      mem.index = static_cast<Reg>(index);
      mem.scale = static_cast<std::uint8_t>(1u << ss);
    }
    if (base == 5 && mod == 0) {
      mem.base = Reg::NONE;
      mem.disp = cur.i32();
    } else {
      mem.base = static_cast<Reg>(base);
    }
  } else if (rm == 5 && mod == 0) {
    // [disp32]
    mem.base = Reg::NONE;
    mem.disp = cur.i32();
  } else {
    mem.base = static_cast<Reg>(rm);
  }

  if (mod == 1) {
    mem.disp = cur.i8sx();
  } else if (mod == 2) {
    mem.disp = cur.i32();
  }
  if (!cur.ok) return std::nullopt;
  return Operand::make_mem(mem, size);
}

// ALU family mnemonic by /r extension or opcode row: add,or,adc,sbb,and,sub,xor,cmp.
Mnemonic alu_mnemonic(std::uint8_t idx) {
  static constexpr Mnemonic kTable[] = {Mnemonic::ADD, Mnemonic::OR,  Mnemonic::ADC,
                                        Mnemonic::SBB, Mnemonic::AND, Mnemonic::SUB,
                                        Mnemonic::XOR, Mnemonic::CMP};
  return kTable[idx & 7];
}

// Shift group (grp2) by /r extension. /2 (RCL) and /3 (RCR) are unsupported.
Mnemonic shift_mnemonic(std::uint8_t ext) {
  switch (ext) {
    case 0: return Mnemonic::ROL;
    case 1: return Mnemonic::ROR;
    case 4: return Mnemonic::SHL;
    case 5: return Mnemonic::SHR;
    case 6: return Mnemonic::SHL;  // SAL == SHL
    case 7: return Mnemonic::SAR;
    default: return Mnemonic::INVALID;
  }
}

std::optional<Insn> finish(Insn insn, const Cursor& cur) {
  if (!cur.ok || insn.op == Mnemonic::INVALID) return std::nullopt;
  insn.len = static_cast<std::uint8_t>(cur.off);
  return insn;
}

std::optional<Insn> decode_0f(Cursor& cur) {
  Insn insn;
  const std::uint8_t op = cur.u8();
  if (!cur.ok) return std::nullopt;

  if (op >= 0x80 && op <= 0x8f) {  // Jcc rel32
    insn.op = Mnemonic::JCC;
    insn.cond = static_cast<Cond>(op & 0xf);
    insn.ops[0] = Operand::make_rel(cur.i32());
    insn.nops = 1;
    insn.wide_imm = true;
    return finish(insn, cur);
  }
  if (op >= 0x90 && op <= 0x9f) {  // SETcc r/m8
    insn.op = Mnemonic::SETCC;
    insn.cond = static_cast<Cond>(op & 0xf);
    std::uint8_t reg_field = 0;
    auto rm = decode_modrm(cur, OpSize::Byte, reg_field);
    if (!rm) return std::nullopt;
    insn.ops[0] = *rm;
    insn.nops = 1;
    insn.opsize = OpSize::Byte;
    return finish(insn, cur);
  }
  switch (op) {
    case 0xaf: {  // IMUL r32, r/m32
      insn.op = Mnemonic::IMUL;
      std::uint8_t reg_field = 0;
      auto rm = decode_modrm(cur, OpSize::Dword, reg_field);
      if (!rm) return std::nullopt;
      insn.ops[0] = Operand::make_reg(static_cast<Reg>(reg_field));
      insn.ops[1] = *rm;
      insn.nops = 2;
      return finish(insn, cur);
    }
    case 0xb6:    // MOVZX r32, r/m8
    case 0xb7:    // MOVZX r32, r/m16
    case 0xbe:    // MOVSX r32, r/m8
    case 0xbf: {  // MOVSX r32, r/m16
      insn.op = (op == 0xb6 || op == 0xb7) ? Mnemonic::MOVZX : Mnemonic::MOVSX;
      const OpSize src = (op & 1) ? OpSize::Word : OpSize::Byte;
      std::uint8_t reg_field = 0;
      auto rm = decode_modrm(cur, src, reg_field);
      if (!rm) return std::nullopt;
      insn.ops[0] = Operand::make_reg(static_cast<Reg>(reg_field));
      insn.ops[1] = *rm;
      insn.nops = 2;
      return finish(insn, cur);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<Insn> decode(std::span<const std::uint8_t> bytes) {
  Cursor cur{bytes};
  Insn insn;
  const std::uint8_t op = cur.u8();
  if (!cur.ok) return std::nullopt;

  // --- ALU family rows 0x00..0x3f (columns 0..5 of each row of 8) ----------
  if (op < 0x40 && (op & 7) < 6) {
    insn.op = alu_mnemonic(op >> 3);
    const std::uint8_t col = op & 7;
    if (col == 4) {  // AL, imm8
      insn.ops[0] = Operand::make_reg(Reg::EAX, OpSize::Byte);
      insn.ops[1] = Operand::make_imm(cur.i8sx(), OpSize::Byte);
      insn.opsize = OpSize::Byte;
    } else if (col == 5) {  // EAX, imm32
      insn.ops[0] = Operand::make_reg(Reg::EAX);
      insn.ops[1] = Operand::make_imm(cur.i32());
    } else {
      const OpSize size = (col & 1) ? OpSize::Dword : OpSize::Byte;
      insn.opsize = size;
      std::uint8_t reg_field = 0;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      const Operand reg = Operand::make_reg(static_cast<Reg>(reg_field), size);
      if (col < 2) {  // r/m, r
        insn.ops[0] = *rm;
        insn.ops[1] = reg;
      } else {  // r, r/m
        insn.ops[0] = reg;
        insn.ops[1] = *rm;
      }
    }
    insn.nops = 2;
    return finish(insn, cur);
  }

  if (op >= 0x40 && op <= 0x4f) {  // INC/DEC r32
    insn.op = (op < 0x48) ? Mnemonic::INC : Mnemonic::DEC;
    insn.ops[0] = Operand::make_reg(static_cast<Reg>(op & 7));
    insn.nops = 1;
    return finish(insn, cur);
  }
  if (op >= 0x50 && op <= 0x5f) {  // PUSH/POP r32
    insn.op = (op < 0x58) ? Mnemonic::PUSH : Mnemonic::POP;
    insn.ops[0] = Operand::make_reg(static_cast<Reg>(op & 7));
    insn.nops = 1;
    return finish(insn, cur);
  }
  if (op >= 0x70 && op <= 0x7f) {  // Jcc rel8
    insn.op = Mnemonic::JCC;
    insn.cond = static_cast<Cond>(op & 0xf);
    insn.ops[0] = Operand::make_rel(cur.i8sx());
    insn.nops = 1;
    return finish(insn, cur);
  }
  if (op >= 0x91 && op <= 0x97) {  // XCHG EAX, r32
    insn.op = Mnemonic::XCHG;
    insn.ops[0] = Operand::make_reg(Reg::EAX);
    insn.ops[1] = Operand::make_reg(static_cast<Reg>(op & 7));
    insn.nops = 2;
    return finish(insn, cur);
  }
  if (op >= 0xb0 && op <= 0xb7) {  // MOV r8, imm8
    insn.op = Mnemonic::MOV;
    insn.ops[0] = Operand::make_reg(static_cast<Reg>(op & 7), OpSize::Byte);
    insn.ops[1] = Operand::make_imm(cur.i8sx(), OpSize::Byte);
    insn.nops = 2;
    insn.opsize = OpSize::Byte;
    return finish(insn, cur);
  }
  if (op >= 0xb8 && op <= 0xbf) {  // MOV r32, imm32
    insn.op = Mnemonic::MOV;
    insn.ops[0] = Operand::make_reg(static_cast<Reg>(op & 7));
    insn.ops[1] = Operand::make_imm(cur.i32());
    insn.nops = 2;
    return finish(insn, cur);
  }

  std::uint8_t reg_field = 0;
  switch (op) {
    case 0x0f:
      return decode_0f(cur);
    case 0x60:
      insn.op = Mnemonic::PUSHAD;
      return finish(insn, cur);
    case 0x61:
      insn.op = Mnemonic::POPAD;
      return finish(insn, cur);
    case 0x68:
      insn.op = Mnemonic::PUSH;
      insn.ops[0] = Operand::make_imm(cur.i32());
      insn.nops = 1;
      insn.wide_imm = true;
      return finish(insn, cur);
    case 0x69: {  // IMUL r32, r/m32, imm32
      insn.op = Mnemonic::IMUL;
      auto rm = decode_modrm(cur, OpSize::Dword, reg_field);
      if (!rm) return std::nullopt;
      insn.ops[0] = Operand::make_reg(static_cast<Reg>(reg_field));
      insn.ops[1] = *rm;
      insn.ops[2] = Operand::make_imm(cur.i32());
      insn.nops = 3;
      insn.wide_imm = true;
      return finish(insn, cur);
    }
    case 0x6a:
      insn.op = Mnemonic::PUSH;
      insn.ops[0] = Operand::make_imm(cur.i8sx());
      insn.nops = 1;
      return finish(insn, cur);
    case 0x6b: {  // IMUL r32, r/m32, imm8
      insn.op = Mnemonic::IMUL;
      auto rm = decode_modrm(cur, OpSize::Dword, reg_field);
      if (!rm) return std::nullopt;
      insn.ops[0] = Operand::make_reg(static_cast<Reg>(reg_field));
      insn.ops[1] = *rm;
      insn.ops[2] = Operand::make_imm(cur.i8sx());
      insn.nops = 3;
      return finish(insn, cur);
    }
    case 0x80:     // grp1 r/m8, imm8
    case 0x81:     // grp1 r/m32, imm32
    case 0x83: {   // grp1 r/m32, imm8 (sign-extended)
      const OpSize size = (op == 0x80) ? OpSize::Byte : OpSize::Dword;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      insn.op = alu_mnemonic(reg_field);
      insn.ops[0] = *rm;
      const std::int32_t imm = (op == 0x81) ? cur.i32() : cur.i8sx();
      insn.ops[1] = Operand::make_imm(imm, (op == 0x80) ? OpSize::Byte : OpSize::Dword);
      insn.nops = 2;
      insn.opsize = size;
      insn.wide_imm = (op == 0x81);
      return finish(insn, cur);
    }
    case 0x84:     // TEST r/m8, r8
    case 0x85: {   // TEST r/m32, r32
      const OpSize size = (op == 0x84) ? OpSize::Byte : OpSize::Dword;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      insn.op = Mnemonic::TEST;
      insn.ops[0] = *rm;
      insn.ops[1] = Operand::make_reg(static_cast<Reg>(reg_field), size);
      insn.nops = 2;
      insn.opsize = size;
      return finish(insn, cur);
    }
    case 0x86:     // XCHG r/m8, r8
    case 0x87: {   // XCHG r/m32, r32
      const OpSize size = (op == 0x86) ? OpSize::Byte : OpSize::Dword;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      insn.op = Mnemonic::XCHG;
      insn.ops[0] = *rm;
      insn.ops[1] = Operand::make_reg(static_cast<Reg>(reg_field), size);
      insn.nops = 2;
      insn.opsize = size;
      return finish(insn, cur);
    }
    case 0x88:     // MOV r/m8, r8
    case 0x89:     // MOV r/m32, r32
    case 0x8a:     // MOV r8, r/m8
    case 0x8b: {   // MOV r32, r/m32
      const OpSize size = (op & 1) ? OpSize::Dword : OpSize::Byte;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      insn.op = Mnemonic::MOV;
      const Operand reg = Operand::make_reg(static_cast<Reg>(reg_field), size);
      if (op < 0x8a) {
        insn.ops[0] = *rm;
        insn.ops[1] = reg;
      } else {
        insn.ops[0] = reg;
        insn.ops[1] = *rm;
      }
      insn.nops = 2;
      insn.opsize = size;
      return finish(insn, cur);
    }
    case 0x8d: {  // LEA r32, m
      auto rm = decode_modrm(cur, OpSize::Dword, reg_field);
      if (!rm || rm->kind != Operand::Kind::Mem) return std::nullopt;
      insn.op = Mnemonic::LEA;
      insn.ops[0] = Operand::make_reg(static_cast<Reg>(reg_field));
      insn.ops[1] = *rm;
      insn.nops = 2;
      return finish(insn, cur);
    }
    case 0x8f: {  // POP r/m32 (/0 only)
      auto rm = decode_modrm(cur, OpSize::Dword, reg_field);
      if (!rm || reg_field != 0) return std::nullopt;
      insn.op = Mnemonic::POP;
      insn.ops[0] = *rm;
      insn.nops = 1;
      return finish(insn, cur);
    }
    case 0x90:
      insn.op = Mnemonic::NOP;
      return finish(insn, cur);
    case 0x99:
      insn.op = Mnemonic::CDQ;
      return finish(insn, cur);
    case 0x9c:
      insn.op = Mnemonic::PUSHFD;
      return finish(insn, cur);
    case 0x9d:
      insn.op = Mnemonic::POPFD;
      return finish(insn, cur);
    case 0xa8:  // TEST AL, imm8
      insn.op = Mnemonic::TEST;
      insn.ops[0] = Operand::make_reg(Reg::EAX, OpSize::Byte);
      insn.ops[1] = Operand::make_imm(cur.i8sx(), OpSize::Byte);
      insn.nops = 2;
      insn.opsize = OpSize::Byte;
      return finish(insn, cur);
    case 0xa9:  // TEST EAX, imm32
      insn.op = Mnemonic::TEST;
      insn.ops[0] = Operand::make_reg(Reg::EAX);
      insn.ops[1] = Operand::make_imm(cur.i32());
      insn.nops = 2;
      return finish(insn, cur);
    case 0xc0:     // grp2 r/m8, imm8
    case 0xc1: {   // grp2 r/m32, imm8
      const OpSize size = (op == 0xc0) ? OpSize::Byte : OpSize::Dword;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      insn.op = shift_mnemonic(reg_field);
      insn.ops[0] = *rm;
      insn.ops[1] = Operand::make_imm(static_cast<std::int32_t>(cur.u8()), OpSize::Byte);
      insn.nops = 2;
      insn.opsize = size;
      return finish(insn, cur);
    }
    case 0xc2:  // RET imm16
      insn.op = Mnemonic::RET;
      insn.ops[0] = Operand::make_imm(static_cast<std::int32_t>(cur.u16()), OpSize::Word);
      insn.nops = 1;
      return finish(insn, cur);
    case 0xc3:
      insn.op = Mnemonic::RET;
      return finish(insn, cur);
    case 0xc6:     // MOV r/m8, imm8 (/0)
    case 0xc7: {   // MOV r/m32, imm32 (/0)
      const OpSize size = (op == 0xc6) ? OpSize::Byte : OpSize::Dword;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm || reg_field != 0) return std::nullopt;
      insn.op = Mnemonic::MOV;
      insn.ops[0] = *rm;
      const std::int32_t imm = (op == 0xc6) ? cur.i8sx() : cur.i32();
      insn.ops[1] = Operand::make_imm(imm, size);
      insn.nops = 2;
      insn.opsize = size;
      insn.wide_imm = (op == 0xc7);
      return finish(insn, cur);
    }
    case 0xc9:
      insn.op = Mnemonic::LEAVE;
      return finish(insn, cur);
    case 0xca:  // RETF imm16
      insn.op = Mnemonic::RETF;
      insn.ops[0] = Operand::make_imm(static_cast<std::int32_t>(cur.u16()), OpSize::Word);
      insn.nops = 1;
      return finish(insn, cur);
    case 0xcb:
      insn.op = Mnemonic::RETF;
      return finish(insn, cur);
    case 0xcc:
      insn.op = Mnemonic::INT3;
      return finish(insn, cur);
    case 0xcd:
      insn.op = Mnemonic::INT;
      insn.ops[0] = Operand::make_imm(static_cast<std::int32_t>(cur.u8()), OpSize::Byte);
      insn.nops = 1;
      return finish(insn, cur);
    case 0xd0:     // grp2 r/m8, 1
    case 0xd1:     // grp2 r/m32, 1
    case 0xd2:     // grp2 r/m8, CL
    case 0xd3: {   // grp2 r/m32, CL
      const OpSize size = (op & 1) ? OpSize::Dword : OpSize::Byte;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      insn.op = shift_mnemonic(reg_field);
      insn.ops[0] = *rm;
      insn.ops[1] = (op < 0xd2) ? Operand::make_imm(1, OpSize::Byte)
                                : Operand::make_reg(Reg::ECX, OpSize::Byte);
      insn.nops = 2;
      insn.opsize = size;
      return finish(insn, cur);
    }
    case 0xe8:
      insn.op = Mnemonic::CALL;
      insn.ops[0] = Operand::make_rel(cur.i32());
      insn.nops = 1;
      insn.wide_imm = true;
      return finish(insn, cur);
    case 0xe9:
      insn.op = Mnemonic::JMP;
      insn.ops[0] = Operand::make_rel(cur.i32());
      insn.nops = 1;
      insn.wide_imm = true;
      return finish(insn, cur);
    case 0xeb:
      insn.op = Mnemonic::JMP;
      insn.ops[0] = Operand::make_rel(cur.i8sx());
      insn.nops = 1;
      return finish(insn, cur);
    case 0xf4:
      insn.op = Mnemonic::HLT;
      return finish(insn, cur);
    case 0xf5:
      insn.op = Mnemonic::CMC;
      return finish(insn, cur);
    case 0xf6:     // grp3 r/m8
    case 0xf7: {   // grp3 r/m32
      const OpSize size = (op == 0xf6) ? OpSize::Byte : OpSize::Dword;
      auto rm = decode_modrm(cur, size, reg_field);
      if (!rm) return std::nullopt;
      insn.opsize = size;
      switch (reg_field) {
        case 0:  // TEST r/m, imm
          insn.op = Mnemonic::TEST;
          insn.ops[0] = *rm;
          insn.ops[1] = Operand::make_imm((op == 0xf6) ? cur.i8sx() : cur.i32(), size);
          insn.nops = 2;
          break;
        case 2:
          insn.op = Mnemonic::NOT;
          insn.ops[0] = *rm;
          insn.nops = 1;
          break;
        case 3:
          insn.op = Mnemonic::NEG;
          insn.ops[0] = *rm;
          insn.nops = 1;
          break;
        case 4:
          insn.op = Mnemonic::MUL;
          insn.ops[0] = *rm;
          insn.nops = 1;
          break;
        case 5:
          insn.op = Mnemonic::IMUL;
          insn.ops[0] = *rm;
          insn.nops = 1;
          break;
        case 6:
          insn.op = Mnemonic::DIV;
          insn.ops[0] = *rm;
          insn.nops = 1;
          break;
        case 7:
          insn.op = Mnemonic::IDIV;
          insn.ops[0] = *rm;
          insn.nops = 1;
          break;
        default:
          return std::nullopt;
      }
      return finish(insn, cur);
    }
    case 0xf8:
      insn.op = Mnemonic::CLC;
      return finish(insn, cur);
    case 0xf9:
      insn.op = Mnemonic::STC;
      return finish(insn, cur);
    case 0xfc:
      insn.op = Mnemonic::CLD;
      return finish(insn, cur);
    case 0xfd:
      insn.op = Mnemonic::STD;
      return finish(insn, cur);
    case 0xfe: {  // grp4 r/m8: /0 INC, /1 DEC
      auto rm = decode_modrm(cur, OpSize::Byte, reg_field);
      if (!rm || reg_field > 1) return std::nullopt;
      insn.op = (reg_field == 0) ? Mnemonic::INC : Mnemonic::DEC;
      insn.ops[0] = *rm;
      insn.nops = 1;
      insn.opsize = OpSize::Byte;
      return finish(insn, cur);
    }
    case 0xff: {  // grp5 r/m32
      auto rm = decode_modrm(cur, OpSize::Dword, reg_field);
      if (!rm) return std::nullopt;
      switch (reg_field) {
        case 0:
          insn.op = Mnemonic::INC;
          break;
        case 1:
          insn.op = Mnemonic::DEC;
          break;
        case 2:
          insn.op = Mnemonic::CALL;
          break;
        case 4:
          insn.op = Mnemonic::JMP;
          break;
        case 6:
          insn.op = Mnemonic::PUSH;
          break;
        default:
          return std::nullopt;
      }
      insn.ops[0] = *rm;
      insn.nops = 1;
      return finish(insn, cur);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace plx::x86

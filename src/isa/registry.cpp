// Backend registry: wire name -> Arch descriptor. Registration order is the
// CLI/telemetry enumeration order; "x86" first keeps it the default every
// pre-seam entry point assumed.
#include "isa/arch.h"

#include "image/image.h"
#include "isa/rv32/arch.h"
#include "isa/x86/arch.h"
#include "vm/vm.h"

namespace plx::isa {

std::unique_ptr<vm::Machine> Arch::make_machine(const img::Image& image) const {
  (void)image;
  return nullptr;
}

img::Fragment Arch::utility_gadget_fragment(const std::string& name) const {
  // Backends without chain support contribute no fallback gadgets: an empty
  // text fragment keeps layout happy and the chain compiler reports the
  // missing gadget types as Diags.
  img::Fragment frag;
  frag.name = name;
  frag.section = img::SectionKind::Text;
  frag.is_func = true;
  frag.align = 16;
  return frag;
}

namespace {

const Arch* const kArchs[] = {
    &x86::x86_arch(),
    &rv32::rv32_arch(),
};

}  // namespace

const Arch* find_arch(std::string_view name) {
  for (const Arch* a : kArchs) {
    if (name == a->name()) return a;
  }
  return nullptr;
}

const Arch& default_arch() { return *kArchs[0]; }

std::vector<std::string> arch_names() {
  std::vector<std::string> names;
  for (const Arch* a : kArchs) names.emplace_back(a->name());
  return names;
}

}  // namespace plx::isa

// RewriteOps capability: the applying and measuring sides of the §IV-B
// crafting rules, as an interface each backend implements over its own
// encodings. Declared apart from isa/arch.h because it names the rewrite
// layer's generic result types (CraftResult, CoverageReport), which pull in
// the image/layout model.
#pragma once

#include "rewrite/protectability.h"
#include "rewrite/rewriter.h"
#include "support/error.h"

namespace plx::isa {

class RewriteOps {
 public:
  virtual ~RewriteOps() = default;

  // Applies the §IV-B rules to a module: edits immediates (with
  // compensators), pads branch targets, and optionally inserts spurious
  // blocks so new overlapping gadgets come into existence, preserving
  // program semantics. Every application is verified by re-layout.
  virtual Result<rewrite::CraftResult> craft_gadgets(
      const img::Module& input, const rewrite::CraftOptions& opts) const = 0;

  // Measures Figure 6: per rule, the fraction of program code bytes covered
  // by at least one craftable overlapping gadget.
  virtual rewrite::CoverageReport analyze_protectability(
      const img::Module& mod, const img::LayoutResult& laid) const = 0;
};

}  // namespace plx::isa

// ISA-generic decoded-instruction model.
//
// The generic layers (gadget scanner, crafting rules driver, pipeline, fuzz
// harness, attack toolkit) reason about instructions only through the facts
// recorded here: validity, encoded length, control-flow kind and a few
// boolean properties. Everything backend-specific (mnemonic, operands,
// encoding hints) rides along in an opaque payload that only the owning
// backend reads back, so a byte sequence is decoded exactly once per offset
// and the backend's classifier / rewriter sees the very same decode the
// scanner produced — no second decode, no drift between the two views.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

namespace plx::isa {

// Backend register handle. Values are backend encoding indices (x86: the
// Reg enum order EAX..EDI); kNoReg is the shared "no register / wildcard"
// sentinel every backend maps its own NONE onto, so generic wildcard
// comparisons (catalog lookups, chain slot matching) work unchanged.
using RegId = std::uint8_t;
inline constexpr RegId kNoReg = 0xff;

// Backend condition-code handle (x86: the tttn encoding). kNoCond means
// "unconditional / not applicable".
using CondId = std::uint8_t;
inline constexpr CondId kNoCond = 0xff;

// Control-flow kind of one decoded instruction, as the scanner needs it:
// straight-line, a branch/call (breaks a gadget chain), or a return (ends
// a gadget).
enum class Flow : std::uint8_t { None, Branch, Ret };

// One decoded instruction. Generic facts up front; the backend's concrete
// decode lives in `priv` (see wrap()/unwrap() below).
struct Insn {
  std::uint8_t len = 0;          // encoded length in bytes (0 = invalid)
  Flow flow = Flow::None;
  bool ok = false;               // decoded to a valid instruction
  bool far_ret = false;          // far return (x86 RETF): unusable for chains
  bool is_nop = false;           // canonical no-op (filler detection)
  bool cond_branch = false;      // conditional branch (patcher's Jcc search)
  CondId cond = kNoCond;         // condition when cond_branch / conditional op
  // Opaque backend payload. Sized/aligned for every in-tree backend's
  // concrete Insn (x86's is the largest); wrap() static_asserts the fit.
  alignas(8) unsigned char priv[88] = {};

  bool valid() const { return ok; }

  // Stores a backend's trivially-copyable concrete decode into `priv`.
  template <typename T>
  void wrap(const T& concrete) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= sizeof(priv));
    std::memcpy(priv, &concrete, sizeof(T));
  }

  // Reads the concrete decode back. Only the backend that produced this
  // Insn may call this (the payload layout is its own).
  template <typename T>
  T unwrap() const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= sizeof(priv));
    T out;
    std::memcpy(&out, priv, sizeof(T));
    return out;
  }
};

// Byte decoder capability: bytes at an arbitrary offset -> Insn. Stateless;
// implementations must be safe to call from any thread (the scanner shards
// windows over a thread pool).
class Decoder {
 public:
  virtual ~Decoder() = default;

  // Decodes the instruction starting at bytes[0]. Returns an Insn with
  // ok=false when the bytes do not form a valid instruction.
  virtual Insn decode(std::span<const std::uint8_t> bytes) const = 0;

  // Semantic equality of two decodes from this backend: same operation,
  // condition, width and operands — encoding hints ignored. Used by the
  // gadget-preserving patch generator to require a semantics-changing byte.
  virtual bool same_semantics(const Insn& a, const Insn& b) const = 0;
};

}  // namespace plx::isa

// The ISA seam: one Arch descriptor per backend plus the narrow capability
// interfaces the generic layers consume (DESIGN.md §15).
//
// Everything above this header — gadget scanner, crafting-rule driver,
// chain compiler driver, pipeline, fuzz harness, attack toolkit, VM users,
// telemetry emitters — names instructions, registers and conditions only
// through isa:: types and reaches backend behaviour only through the
// capabilities an Arch hands out. Backends live in src/isa/<name>/ and are
// the only code allowed to include backend headers; the include-layering
// lint (tests/check_layering.cmake) enforces that at build time.
//
// Capabilities are split by consumer so a new backend can come up
// incrementally: a Decoder alone is enough for scanning, a GadgetClassifier
// makes scan results meaningful, and ChainABI / RewriteOps / BranchPatchOps
// unlock chain compilation, crafting and the attack toolkit. Optional
// capabilities return nullptr and the consuming layer reports a Diag
// instead of crashing (the rv32 stub exercises exactly this path).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "isa/insn.h"

namespace plx::img {
class Image;
struct Fragment;
}
namespace plx::vm {
class Machine;
}

namespace plx::isa {

class GadgetClassifier;  // isa/classifier.h (needs gadget/gadget.h)
class RewriteOps;        // isa/rewrite_ops.h (needs image/layout.h)
class BranchPatchOps;    // isa/patch_ops.h

// Chain-ABI capability: the register roles and condition handles the ROP
// chain compiler (ropc/) targets, plus the naming used in its diagnostics.
// The role registers are fixed per backend, mirroring the paper's fixed
// gadget vocabulary: an accumulator, an auxiliary/right-hand-side register,
// an address register for memory gadgets, and the stack pointer the chain
// itself runs on.
class ChainABI {
 public:
  virtual ~ChainABI() = default;

  RegId acc = kNoReg;   // accumulator (x86: EAX)
  RegId aux = kNoReg;   // rhs / scratch (x86: EDX)
  RegId addr = kNoReg;  // address operand for load/store (x86: ECX)
  RegId sp = kNoReg;    // stack pointer the chain executes on (x86: ESP)

  // Condition handles for the IR compare operators.
  CondId cond_eq = kNoCond;
  CondId cond_ne = kNoCond;
  CondId cond_lt = kNoCond;
  CondId cond_le = kNoCond;
  CondId cond_gt = kNoCond;
  CondId cond_ge = kNoCond;

  virtual const char* reg_name(RegId r) const = 0;
  virtual const char* cond_name(CondId c) const = 0;
};

// One backend. Stateless and immutable after registration; every method is
// safe to call concurrently.
class Arch {
 public:
  virtual ~Arch() = default;

  virtual const char* name() const = 0;
  virtual std::uint32_t pointer_bytes() const = 0;
  // Smallest legal instruction alignment. The scanner only decodes at
  // offsets satisfying it (1 on x86: every byte offset is a decode site —
  // the overlapped-gadget trick; 2 on rv32 with the C extension).
  virtual std::uint32_t insn_align() const = 0;
  virtual std::uint32_t max_insn_len() const = 0;
  // Every single-byte opcode that terminates a gadget (x86: C3, CB). Used
  // by protectability masks and tests; the scanner itself goes through
  // decoded Flow::Ret.
  virtual std::span<const std::uint8_t> ret_opcodes() const = 0;
  // The canonical near-return byte the crafting rules plant (x86: C3).
  virtual std::uint8_t ret_opcode() const = 0;
  virtual std::uint8_t nop_byte() const = 0;
  virtual std::uint32_t reg_count() const = 0;

  virtual const Decoder& decoder() const = 0;
  virtual const GadgetClassifier& classifier() const = 0;

  // Optional capabilities; nullptr when the backend does not (yet) support
  // the corresponding layer.
  virtual const ChainABI* chain_abi() const { return nullptr; }
  virtual const RewriteOps* rewrite_ops() const { return nullptr; }
  virtual const BranchPatchOps* branch_patch_ops() const { return nullptr; }

  // Constructs the execution substrate for a PLX image of this ISA; the
  // base implementation (isa/registry.cpp) returns nullptr — no VM.
  virtual std::unique_ptr<vm::Machine> make_machine(const img::Image& image) const;

  // The fallback utility gadget set of §III: one fragment providing every
  // gadget type the ROP compiler may require. The base implementation
  // (isa/registry.cpp) returns an empty fragment — backends without chain
  // support contribute no gadgets.
  virtual img::Fragment utility_gadget_fragment(
      const std::string& name = "__plx_gadgets") const;
};

// --- registry (isa/registry.cpp) -------------------------------------------

// Backend by wire name ("x86", "rv32"); nullptr for unknown names.
const Arch* find_arch(std::string_view name);

// The default backend ("x86") — what every existing entry point assumes.
const Arch& default_arch();

// All registered wire names, registration order (CLI usage strings and the
// telemetry validator's accepted set).
std::vector<std::string> arch_names();

}  // namespace plx::isa

// BranchPatchOps capability: the attacker toolkit's static-patching
// primitives that depend on branch encodings — locating conditional
// branches and rewriting them in place, length-preserved. Generic attack
// code (attack/patcher) dispatches here by the target image's ISA.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/insn.h"

namespace plx::img {
class Image;
}

namespace plx::isa {

class BranchPatchOps {
 public:
  virtual ~BranchPatchOps() = default;

  // Address of the nth conditional branch with condition `cc` inside the
  // named function, by linear decode from its entry; nullopt when absent.
  virtual std::optional<std::uint32_t> find_cond_branch(
      const img::Image& image, const std::string& function, CondId cc,
      int nth) const = 0;

  // Rewrites the conditional branch at `addr` so it is always taken,
  // preserving the instruction length and fall-through address.
  virtual bool make_unconditional(img::Image& image, std::uint32_t addr) const = 0;

  // Rewrites the conditional branch at `addr` so it is never taken.
  virtual bool neutralize(img::Image& image, std::uint32_t addr) const = 0;
};

}  // namespace plx::isa
